"""Projection stage: culling, conics, radii, overrides, Mip filter."""

import numpy as np
import pytest

from repro.splat.camera import Camera
from repro.splat.gaussians import GaussianModel, random_model
from repro.splat.projection import project_gaussians


def single_point_model(position, scale=0.3, opacity_logit=2.0):
    return GaussianModel(
        positions=np.asarray([position], dtype=float),
        log_scales=np.log(np.full((1, 3), scale)),
        rotations=np.array([[1.0, 0, 0, 0]]),
        opacity_logits=np.array([opacity_logit]),
        sh=np.zeros((1, 1, 3)),
    )


class TestCulling:
    def test_behind_camera_culled(self, front_camera):
        model = single_point_model([0.0, 0.0, -10.0])
        projected = project_gaussians(model, front_camera)
        assert projected.num_visible == 0

    def test_in_front_kept(self, front_camera):
        model = single_point_model([0.0, 0.0, 0.0])
        projected = project_gaussians(model, front_camera)
        assert projected.num_visible == 1

    def test_outside_frustum_margin_culled(self, front_camera):
        # 60° FOV: a point 80° off-axis is far outside the 1.3x margin.
        model = single_point_model([30.0, 0.0, 0.0])
        projected = project_gaussians(model, front_camera)
        assert projected.num_visible == 0

    def test_point_ids_index_source_model(self, front_camera, rng):
        model = random_model(60, np.random.default_rng(3), extent=2.0)
        projected = project_gaussians(model, front_camera)
        assert projected.point_ids.max(initial=0) < model.num_points
        assert len(np.unique(projected.point_ids)) == projected.num_visible

    def test_empty_model_ok(self, front_camera):
        model = random_model(5, np.random.default_rng(0), extent=0.1)
        # Move all points far behind the camera.
        model.positions[:, 2] = -100.0
        projected = project_gaussians(model, front_camera)
        assert projected.num_visible == 0
        assert projected.means2d.shape == (0, 2)


class TestConics:
    def test_center_projects_to_screen_position(self, front_camera):
        model = single_point_model([0.0, 0.0, 0.0])
        projected = project_gaussians(model, front_camera)
        assert projected.means2d[0, 0] == pytest.approx(front_camera.cx)
        assert projected.means2d[0, 1] == pytest.approx(front_camera.cy)

    def test_conic_positive_definite(self, front_camera, small_scene):
        projected = project_gaussians(small_scene, front_camera)
        a, b, c = projected.conics[:, 0], projected.conics[:, 1], projected.conics[:, 2]
        assert np.all(a > 0)
        assert np.all(a * c - b * b > 0)

    def test_conic_inverts_cov2d(self, front_camera):
        model = single_point_model([0.3, -0.2, 0.0])
        projected = project_gaussians(model, front_camera)
        a, b, c = projected.cov2d[0]
        ca, cb, cc = projected.conics[0]
        cov = np.array([[a, b], [b, c]])
        conic = np.array([[ca, cb], [cb, cc]])
        assert np.allclose(cov @ conic, np.eye(2), atol=1e-9)

    def test_radius_grows_with_scale(self, front_camera):
        small = project_gaussians(single_point_model([0, 0, 0], scale=0.1), front_camera)
        large = project_gaussians(single_point_model([0, 0, 0], scale=0.8), front_camera)
        assert large.radii[0] > small.radii[0]

    def test_radius_shrinks_with_depth(self, front_camera):
        near = project_gaussians(single_point_model([0, 0, -2.0], scale=0.4), front_camera)
        far = project_gaussians(single_point_model([0, 0, 8.0], scale=0.4), front_camera)
        assert near.radii[0] > far.radii[0]


class TestMipSmoothingFilter:
    def test_filter_enlarges_small_distant_splats(self, front_camera):
        model = single_point_model([0.0, 0.0, 10.0], scale=0.01)
        plain = project_gaussians(model, front_camera, smoothing_3d=0.0)
        mip = project_gaussians(model, front_camera, smoothing_3d=2.0)
        assert mip.radii[0] >= plain.radii[0]
        assert mip.cov2d[0, 0] > plain.cov2d[0, 0]

    def test_filter_barely_touches_large_splats(self, front_camera):
        model = single_point_model([0.0, 0.0, 0.0], scale=1.0)
        plain = project_gaussians(model, front_camera, smoothing_3d=0.0)
        mip = project_gaussians(model, front_camera, smoothing_3d=1.0)
        assert mip.cov2d[0, 0] == pytest.approx(plain.cov2d[0, 0], rel=0.05)


class TestOverrides:
    def test_opacity_override(self, front_camera, small_scene):
        override = np.full(small_scene.num_points, 0.123)
        projected = project_gaussians(small_scene, front_camera, opacity_override=override)
        assert np.allclose(projected.opacities, 0.123)

    def test_color_override(self, front_camera, small_scene):
        override = np.tile([0.1, 0.2, 0.3], (small_scene.num_points, 1))
        projected = project_gaussians(small_scene, front_camera, color_override=override)
        assert np.allclose(projected.colors, [0.1, 0.2, 0.3])

    def test_default_colors_from_sh(self, front_camera, small_scene):
        projected = project_gaussians(small_scene, front_camera)
        assert np.all(projected.colors >= 0.0)
        assert projected.colors.std() > 0.0  # scene has colour variety
