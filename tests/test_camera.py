"""Camera model: look-at construction, projection, visual-angle geometry."""

import numpy as np
import pytest

from repro.splat.camera import Camera


@pytest.fixture()
def cam():
    return Camera.from_fov(
        width=128,
        height=96,
        fov_x_deg=90.0,
        position=np.array([0.0, 0.0, -4.0]),
        look_at=np.zeros(3),
    )


class TestConstruction:
    def test_position_round_trip(self, cam):
        assert np.allclose(cam.position, [0.0, 0.0, -4.0])

    def test_fov_round_trip(self, cam):
        assert cam.fov_x_deg == pytest.approx(90.0)

    def test_rotation_is_orthonormal(self, cam):
        rot = cam.world_to_cam_rotation
        assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-12)

    def test_look_at_point_is_on_axis(self, cam):
        screen, depth = cam.project(np.zeros((1, 3)))
        assert depth[0] == pytest.approx(4.0)
        assert screen[0, 0] == pytest.approx(cam.cx)
        assert screen[0, 1] == pytest.approx(cam.cy)

    def test_coincident_position_target_rejected(self):
        with pytest.raises(ValueError):
            Camera.from_fov(64, 48, 60.0, np.zeros(3), np.zeros(3))

    def test_degenerate_up_vector_handled(self):
        # up parallel to the viewing direction must not crash.
        cam = Camera.from_fov(
            64, 48, 60.0, np.array([0.0, -3.0, 0.0]), np.zeros(3),
            up=np.array([0.0, -1.0, 0.0]),
        )
        assert np.all(np.isfinite(cam.world_to_cam_rotation))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Camera(
                width=0, height=48, fx=10, fy=10, cx=0, cy=0,
                world_to_cam_rotation=np.eye(3),
                world_to_cam_translation=np.zeros(3),
            )


class TestProjection:
    def test_right_of_center_projects_right(self, cam):
        # +x (camera right) must land at larger pixel u.
        right_world = cam.world_to_cam_rotation[0]
        screen, _ = cam.project((right_world * 1.0 + np.array([0.0, 0.0, 0.0]))[None])
        assert screen[0, 0] > cam.cx

    def test_projection_scales_with_depth(self, cam):
        p_near = np.array([[1.0, 0.0, -2.0]])
        p_far = np.array([[1.0, 0.0, 2.0]])
        s_near, d_near = cam.project(p_near)
        s_far, d_far = cam.project(p_far)
        assert d_far[0] > d_near[0]
        assert abs(s_far[0, 0] - cam.cx) < abs(s_near[0, 0] - cam.cx)

    def test_view_directions_unit(self, cam):
        points = np.random.default_rng(0).normal(size=(40, 3)) * 5
        dirs = cam.view_directions(points)
        assert np.allclose(np.linalg.norm(dirs, axis=1), 1.0)


class TestVisualAngle:
    def test_pixel_rays_unit(self, cam):
        rays = cam.pixel_rays()
        assert rays.shape == (96, 128, 3)
        assert np.allclose(np.linalg.norm(rays, axis=-1), 1.0)

    def test_eccentricity_zero_at_gaze(self, cam):
        ecc = cam.pixel_eccentricity()
        cy, cx = int(cam.cy), int(cam.cx)
        # Minimum sits at the principal point (within half-pixel accuracy).
        assert ecc[cy, cx] < cam.degrees_per_pixel()

    def test_eccentricity_increases_toward_corner(self, cam):
        ecc = cam.pixel_eccentricity()
        assert ecc[0, 0] > ecc[48, 64]
        # Corner of a 90-degree-FOV image is ~48 degrees off-axis.
        assert 40.0 < ecc[0, 0] < 56.0

    def test_gaze_shifts_eccentricity(self, cam):
        gaze = (20.0, 20.0)
        ecc = cam.pixel_eccentricity(gaze)
        assert ecc[20, 20] < 1.5
        assert ecc[20, 20] < ecc[90, 120]

    def test_degrees_per_pixel_matches_fov(self, cam):
        # Central pixels subtend the largest angle; for a 90-degree FOV the
        # flat-projection overestimate (deg/px × width) is ~27% above fov.
        approx_fov = cam.degrees_per_pixel() * cam.width
        assert cam.fov_x_deg < approx_fov < 1.35 * cam.fov_x_deg
