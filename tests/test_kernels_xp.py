"""The array-namespace kernel layer: resolution, workspace, equivalence.

The numpy namespace is exercised everywhere (it is the default engine);
these tests pin the resolution machinery and the namespace-owned
workspace, and — when torch is installed — pin the torch namespace to the
reference oracle within the backend-equivalence tolerance.  All torch
tests skip cleanly when the package is absent (the CI matrix has one leg
that installs CPU torch specifically to run them).
"""

import numpy as np
import pytest

from repro.splat import Camera, RenderConfig, random_model, render, render_batch
from repro.splat.backends import get_backend, set_array_api
from repro.splat.backends.kernels import (
    NumpyNamespace,
    Workspace,
    array_api_installed,
    available_array_apis,
    get_array_namespace,
    resolve_array_api_name,
    segment_transmittance_exclusive,
    segmented_cumsum_exclusive,
    set_default_array_api,
)
from repro.splat.backends.segments import SegmentIndex
from repro.splat.renderer import prepare_view

TOL = 1e-10


def random_scene(seed: int, n: int = 200):
    return random_model(n, np.random.default_rng(seed), extent=2.0)


def camera(width=96, height=64) -> Camera:
    return Camera.from_fov(
        width=width,
        height=height,
        fov_x_deg=60.0,
        position=np.array([0.0, 0.0, -4.0]),
        look_at=np.array([0.0, 0.0, 0.0]),
    )


class TestResolution:
    def test_default_is_numpy(self):
        assert resolve_array_api_name(None) in available_array_apis()
        assert get_array_namespace().name in available_array_apis()

    def test_numpy_is_singleton(self):
        assert get_array_namespace("numpy") is get_array_namespace("numpy")

    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_API", "cupy")
        assert resolve_array_api_name("numpy") == "numpy"

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_API", "torch")
        assert resolve_array_api_name(None) == "torch"

    def test_override_outranks_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARRAY_API", "torch")
        set_default_array_api("numpy")
        try:
            assert resolve_array_api_name(None) == "numpy"
        finally:
            set_default_array_api(None)

    def test_unknown_namespace_rejected(self):
        with pytest.raises(ValueError, match="unknown array namespace"):
            get_array_namespace("jax")
        with pytest.raises(ValueError, match="unknown array namespace"):
            set_default_array_api("jax")

    def test_installed_probe(self):
        assert array_api_installed("numpy")

    @pytest.mark.parametrize("name", ["torch", "cupy"])
    def test_missing_package_raises_cleanly(self, name):
        if array_api_installed(name):
            pytest.skip(f"{name} is installed here")
        with pytest.raises(RuntimeError, match="not installed"):
            get_array_namespace(name)

    def test_set_array_api_refreshes_packed_xp(self):
        first = get_backend("packed-xp")
        set_array_api("numpy")
        try:
            second = get_backend("packed-xp")
            assert second is not first
            assert second.nsx.name == "numpy"
        finally:
            set_array_api(None)


class TestWorkspace:
    def test_slot_reuse_and_growth(self):
        ws = Workspace()
        a = ws.take("slot", (4, 8))
        assert a.shape == (4, 8)
        b = ws.take("slot", (2, 8))  # smaller: sliced from the same buffer
        assert b.base is ws._slots["slot"]
        assert a.base is ws._slots["slot"]
        big = ws.take("slot", (64, 64))  # larger: grown with headroom
        assert big.size == 64 * 64
        assert ws._slots["slot"].size >= 64 * 64

    def test_dtype_switch_reallocates(self):
        ws = Workspace()
        f = ws.take("slot", (8,))
        i = ws.take("slot", (8,), np.int64)
        assert i.dtype == np.int64
        assert f.dtype == np.float64

    def test_trim_drops_slots(self):
        ws = Workspace()
        ws.take("slot", (8,))
        ws.trim()
        assert not ws._slots

    def test_namespace_owned(self):
        nsx = NumpyNamespace()
        ws = Workspace(nsx)
        assert ws.nsx is nsx
        assert isinstance(ws.take("slot", (3, 3)), np.ndarray)

    def test_slots_are_thread_local(self):
        import threading

        ws = Workspace()
        mine = ws.take("slot", (8,))
        theirs = {}

        def worker():
            theirs["buf"] = ws.take("slot", (8,))

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        # Two threads never share a scan buffer from the same arena.
        assert theirs["buf"].base is not mine.base


def _render_equivalent(model, cam, backend, **config_kwargs):
    ref = render(model, cam, RenderConfig(backend="reference", **config_kwargs))
    got = render(model, cam, RenderConfig(backend=backend, **config_kwargs))
    assert np.abs(ref.image - got.image).max() < TOL
    if ref.stats is not None:
        assert np.array_equal(ref.stats.dominated_pixels, got.stats.dominated_pixels)
    return ref, got


class TestTorchNamespace:
    """Torch drop-in equivalence; every test skips when torch is absent."""

    @pytest.fixture(scope="class")
    def nsx(self):
        pytest.importorskip("torch")
        from repro.splat.backends.kernels import TorchNamespace

        return TorchNamespace(device="cpu")

    @pytest.fixture()
    def torch_backend(self, nsx):
        from repro.splat.backends.packed import PackedBackend

        return PackedBackend(array_namespace=nsx, name="packed-xp")

    def test_segment_scan_matches_numpy(self, nsx):
        rng = np.random.default_rng(0)
        lens = rng.integers(0, 7, size=20)
        index = SegmentIndex.from_lengths(lens)
        values = rng.normal(size=(3, int(lens.sum())))
        excl_np, tot_np = segmented_cumsum_exclusive(values, index)
        excl_t, tot_t = segmented_cumsum_exclusive(
            nsx.asarray(values.copy()), index, nsx=nsx
        )
        np.testing.assert_allclose(nsx.to_numpy(excl_t), excl_np, atol=1e-12)
        np.testing.assert_allclose(nsx.to_numpy(tot_t), tot_np, atol=1e-12)

    def test_transmittance_scan_matches_numpy(self, nsx):
        rng = np.random.default_rng(1)
        lens = rng.integers(1, 9, size=16)
        index = SegmentIndex.from_lengths(lens)
        alphas = rng.uniform(0.0, 0.999, size=(2, int(lens.sum())))
        trans_np = segment_transmittance_exclusive(alphas.copy(), index)
        trans_t = segment_transmittance_exclusive(nsx.asarray(alphas.copy()), index, nsx=nsx)
        np.testing.assert_allclose(nsx.to_numpy(trans_t), trans_np, atol=1e-12)
        # Every segment starts at an exact 1.0 on both namespaces.
        assert np.all(nsx.to_numpy(trans_t)[:, index.starts] == 1.0)

    def test_segment_reductions_match_numpy(self, nsx):
        rng = np.random.default_rng(2)
        lens = rng.integers(1, 6, size=12)
        index = SegmentIndex.from_lengths(lens)
        values = rng.normal(size=(4, int(lens.sum())))
        seg_np = NumpyNamespace().segments(index)
        seg_t = nsx.segments(index)
        vt = nsx.asarray(values)
        np_ns = NumpyNamespace()
        np.testing.assert_allclose(
            nsx.to_numpy(nsx.segment_sum(vt, seg_t)),
            np_ns.segment_sum(values, seg_np),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            nsx.to_numpy(nsx.segment_max(vt, seg_t)),
            np_ns.segment_max(values, seg_np),
        )
        np.testing.assert_allclose(
            nsx.to_numpy(nsx.segment_min(vt, seg_t)),
            np_ns.segment_min(values, seg_np),
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_forward_matches_reference(self, torch_backend, seed):
        from repro.splat.rasterizer import rasterize

        model = random_scene(seed)
        projected, assignment = prepare_view(model, camera(width=70, height=52))
        ref_img, ref_stats = rasterize(
            projected, assignment, model.num_points, backend="reference"
        )
        got_img, got_stats = rasterize(
            projected, assignment, model.num_points, backend=torch_backend
        )
        assert np.abs(ref_img - got_img).max() < TOL
        assert np.array_equal(
            ref_stats.dominated_pixels, got_stats.dominated_pixels
        )

    def test_forward_per_pixel_sort(self, torch_backend):
        from repro.splat.rasterizer import rasterize

        model = random_scene(3)
        projected, assignment = prepare_view(model, camera())
        ref_img, _ = rasterize(
            projected, assignment, model.num_points, backend="reference",
            per_pixel_sort=True,
        )
        got_img, _ = rasterize(
            projected, assignment, model.num_points, backend=torch_backend,
            per_pixel_sort=True,
        )
        assert np.abs(ref_img - got_img).max() < TOL

    def test_forward_batch_matches_reference(self, torch_backend):
        from repro.splat.rasterizer import rasterize_batch

        model = random_scene(4)
        cams = [camera(), camera(width=48, height=80), camera(width=80, height=48)]
        views = [tuple(prepare_view(model, c)) for c in cams]
        ref = rasterize_batch(views, num_points=model.num_points, backend="reference")
        got = rasterize_batch(views, num_points=model.num_points, backend=torch_backend)
        for (ri, rs), (gi, gs) in zip(ref, got):
            assert np.abs(ri - gi).max() < TOL
            assert np.array_equal(rs.dominated_pixels, gs.dominated_pixels)

    def test_backward_matches_reference(self, torch_backend):
        from repro.splat.rasterizer import rasterize, rasterize_backward

        model = random_scene(5)
        cam = camera(width=70, height=52)
        projected, assignment = prepare_view(model, cam)
        grad_image = np.random.default_rng(0).normal(size=(cam.height, cam.width, 3))
        background = np.array([0.3, 0.1, 0.8])
        ref = rasterize_backward(
            projected, assignment, model.num_points, grad_image=grad_image,
            background=background, backend="reference",
        )
        got = rasterize_backward(
            projected, assignment, model.num_points, grad_image=grad_image,
            background=background, backend=torch_backend,
        )
        for field in ("color", "opacity", "log_scale"):
            assert np.allclose(
                getattr(ref, field), getattr(got, field), atol=TOL
            ), field

    def test_foveated_matches_reference(self, nsx, torch_backend):
        from repro.foveation import render_foveated, uniform_foveated_model
        from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
        from repro.scenes import generate_scene, trace_cameras

        scene = generate_scene("kitchen", n_points=160)
        train, _ = trace_cameras("kitchen", n_train=1, n_eval=1, width=96, height=64)
        fmodel = uniform_foveated_model(
            scene, EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS
        )
        ref = render_foveated(
            fmodel, train[0], config=RenderConfig(backend="reference")
        )
        got = render_foveated(
            fmodel, train[0], config=RenderConfig(backend=torch_backend)
        )
        assert np.abs(ref.image - got.image).max() < TOL
        assert ref.stats.blend_pixels == got.stats.blend_pixels

    def test_foveated_batch_matches_reference(self, nsx, torch_backend):
        from repro.foveation import (
            render_foveated,
            render_foveated_batch,
            uniform_foveated_model,
        )
        from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
        from repro.scenes import generate_scene, trace_cameras

        scene = generate_scene("kitchen", n_points=160)
        train, _ = trace_cameras("kitchen", n_train=1, n_eval=1, width=96, height=64)
        fmodel = uniform_foveated_model(
            scene, EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS
        )
        gazes = [None, (0.0, 0.0), (48.0, 32.0)]
        batch = render_foveated_batch(
            fmodel, train[0], gazes=gazes,
            config=RenderConfig(backend=torch_backend),
        )
        for gaze, got in zip(gazes, batch):
            ref = render_foveated(
                fmodel, train[0], gaze=gaze,
                config=RenderConfig(backend="reference"),
            )
            assert np.abs(ref.image - got.image).max() < TOL
            assert ref.stats.blend_pixels == got.stats.blend_pixels
            assert np.array_equal(
                ref.stats.sort_intersections_per_tile,
                got.stats.sort_intersections_per_tile,
            )

    def test_render_batch_via_registry(self, nsx, monkeypatch):
        # End-to-end: REPRO_ARRAY_API=torch resolved through the registry.
        monkeypatch.setenv("REPRO_TORCH_DEVICE", "cpu")
        set_array_api("torch")
        try:
            model = random_scene(6)
            cams = [camera(), camera(width=48, height=80)]
            got = render_batch(model, cams, RenderConfig(backend="packed-xp"))
            ref = [
                render(model, c, RenderConfig(backend="reference")) for c in cams
            ]
            for r, g in zip(ref, got):
                assert np.abs(r.image - g.image).max() < TOL
        finally:
            set_array_api(None)
