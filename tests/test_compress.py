"""SH vector quantization: codebook training, round trips, storage."""

import numpy as np
import pytest

from repro.compress import (
    CompressedModel,
    VQCodebook,
    compress_model,
    quantization_error,
    train_codebook,
)
from repro.hvs.metrics import psnr
from repro.scenes import generate_scene, trace_cameras
from repro.splat import render


class TestCodebook:
    def test_assign_returns_nearest(self):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        book = VQCodebook(centers=centers)
        idx = book.assign(np.array([[0.1, -0.1], [9.0, 11.0]]))
        assert list(idx) == [0, 1]

    def test_decode_round_trip(self):
        centers = np.random.default_rng(0).normal(size=(8, 5))
        book = VQCodebook(centers=centers)
        idx = np.array([3, 0, 7])
        assert np.allclose(book.decode(idx), centers[idx])

    def test_training_reduces_error(self):
        rng = np.random.default_rng(1)
        # Three well-separated clusters.
        data = np.concatenate([
            rng.normal(loc=c, scale=0.1, size=(50, 4)) for c in (-3.0, 0.0, 3.0)
        ])
        book = train_codebook(data, num_codes=3, iterations=15, seed=0)
        err = np.mean(np.sum((data - book.decode(book.assign(data))) ** 2, axis=1))
        assert err < 0.2

    def test_more_codes_less_error(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(200, 6))
        err = []
        for k in (2, 16, 64):
            book = train_codebook(data, num_codes=k, iterations=8, seed=0)
            err.append(
                np.mean(np.sum((data - book.decode(book.assign(data))) ** 2, axis=1))
            )
        assert err[0] > err[1] > err[2]

    def test_codes_capped_at_data_size(self):
        data = np.random.default_rng(3).normal(size=(5, 3))
        book = train_codebook(data, num_codes=100)
        assert book.num_codes == 5

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            train_codebook(np.zeros((0, 3)), num_codes=4)


class TestCompressModel:
    @pytest.fixture(scope="class")
    def scene(self):
        return generate_scene("garden", n_points=300, sh_degree=2)

    def test_compression_ratio_above_one(self, scene):
        compressed = compress_model(scene, num_codes=64)
        assert compressed.compression_ratio() > 1.5

    def test_dc_preserved_exactly(self, scene):
        compressed = compress_model(scene, num_codes=32)
        restored = compressed.decompress()
        assert np.allclose(restored.sh[:, 0, :], scene.sh[:, 0, :])
        assert np.allclose(restored.positions, scene.positions)
        assert np.allclose(restored.opacity_logits, scene.opacity_logits)

    def test_quantization_error_decreases_with_codes(self, scene):
        err_small = quantization_error(scene, compress_model(scene, num_codes=4))
        err_large = quantization_error(scene, compress_model(scene, num_codes=128))
        assert err_large < err_small

    def test_degree0_lossless(self):
        scene = generate_scene("room", n_points=100, sh_degree=0)
        compressed = compress_model(scene)
        assert quantization_error(scene, compressed) == 0.0
        restored = compressed.decompress()
        assert np.allclose(restored.sh, scene.sh)

    def test_render_quality_survives_compression(self, scene):
        """The headline claim: VQ barely moves rendered quality."""
        train, _ = trace_cameras("garden", n_train=4, width=64, height=48)
        target = render(scene, train[0]).image
        restored = compress_model(scene, num_codes=128, iterations=8).decompress()
        image = render(restored, train[0]).image
        assert psnr(target, image) > 30.0

    def test_storage_accounting(self, scene):
        compressed = compress_model(scene, num_codes=64)
        # Storage = kept params + codebook + 2-byte indices.
        kept = scene.num_points * (3 + 3 + 4 + 1 + 3) * 4
        codebook = compressed.codebook.centers.size * 4
        indices = scene.num_points * 2
        assert compressed.storage_bytes() == kept + codebook + indices
