"""HashRing + ShardRouter: stability, disjointness, determinism, memoization."""

import asyncio
import signal

import numpy as np
import pytest

from repro.foveation import uniform_foveated_model
from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
from repro.scenes import trace_cameras
from repro.serve import (
    FrameRequest,
    GazeRegionKey,
    HashRing,
    ServeConfig,
    ShardRouter,
    WorkloadSpec,
    default_shards,
    generate_serve_trace,
    replay_trace,
    replay_trace_sharded,
)
from repro.splat import random_model
from repro.splat.cachekey import camera_fingerprint, fingerprint_bytes

WIDTH, HEIGHT = 64, 48
TIMEOUT_S = 120


@pytest.fixture(autouse=True)
def multiprocess_timeout():
    """Fail fast if a sharded cluster (possibly with a pool) hangs."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(f"sharding test exceeded {TIMEOUT_S}s watchdog")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="module")
def fmodel():
    return uniform_foveated_model(
        random_model(80, np.random.default_rng(3)),
        EVAL_REGION_LAYOUT,
        EVAL_LEVEL_FRACTIONS,
    )


@pytest.fixture(scope="module")
def cameras():
    _, evals = trace_cameras(
        "kitchen", n_train=4, n_eval=4, width=WIDTH, height=HEIGHT
    )
    return evals


@pytest.fixture(scope="module")
def trace(cameras):
    return generate_serve_trace(
        cameras,
        WorkloadSpec(n_clients=4, frames_per_client=10, zipf_s=1.1, seed=0),
    )


def run(coro):
    return asyncio.run(coro)


class TestFingerprintBytes:
    def test_deterministic_and_injective_on_key_shapes(self, cameras):
        cam_fp = camera_fingerprint(cameras[0])
        region = GazeRegionKey(ring=2, sector=5)
        a = fingerprint_bytes((cam_fp, region))
        assert a == fingerprint_bytes((cam_fp, region))
        assert a != fingerprint_bytes((cam_fp, GazeRegionKey(ring=2, sector=6)))
        assert a != fingerprint_bytes((camera_fingerprint(cameras[1]), region))
        # Framing: concatenation ambiguities must not collide.
        assert fingerprint_bytes((("ab",), ("c",))) != fingerprint_bytes(
            (("a",), ("bc",))
        )
        assert fingerprint_bytes(1) != fingerprint_bytes(1.0)
        assert fingerprint_bytes(True) != fingerprint_bytes(1)

    def test_rejects_unencodable(self):
        with pytest.raises(TypeError, match="canonically encode"):
            fingerprint_bytes(object())


class TestHashRing:
    def test_routing_is_deterministic_across_instances(self):
        keys = [f"key-{i}".encode() for i in range(500)]
        a, b = HashRing(4), HashRing(4)
        assert [a.route_bytes(k) for k in keys] == [b.route_bytes(k) for k in keys]

    def test_all_shards_receive_load(self):
        ring = HashRing(4)
        owners = {ring.route_bytes(f"key-{i}".encode()) for i in range(2000)}
        assert owners == {0, 1, 2, 3}

    def test_load_is_roughly_balanced(self):
        ring = HashRing(4, vnodes=128)
        counts = np.zeros(4, dtype=int)
        for i in range(4000):
            counts[ring.route_bytes(f"key-{i}".encode())] += 1
        mean = counts.mean()
        assert counts.max() / mean < 1.6 and counts.min() / mean > 0.5

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_scale_out_moves_about_one_over_n_plus_one(self, n):
        # Consistent hashing's defining property: growing N -> N+1 shards
        # remaps only ~1/(N+1) of the keys, and every remapped key lands
        # on the *new* shard (existing shards' ring points are untouched).
        keys = [f"key-{i}".encode() for i in range(3000)]
        before = HashRing(n, vnodes=128)
        after = HashRing(n + 1, vnodes=128)
        moved = [
            (before.route_bytes(k), after.route_bytes(k))
            for k in keys
            if before.route_bytes(k) != after.route_bytes(k)
        ]
        fraction = len(moved) / len(keys)
        expected = 1.0 / (n + 1)
        assert 0.3 * expected < fraction < 2.0 * expected, fraction
        assert all(new == n for _, new in moved)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            HashRing(0)
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(2, vnodes=0)


class TestShardRouter:
    def test_disjoint_key_ownership(self, fmodel, trace):
        # Every (camera fp, gaze region) routing key is owned by exactly
        # one shard: across a whole replay, no two shards ever cached the
        # same frame key.
        async def scenario():
            async with ShardRouter(fmodel, n_shards=3) as router:
                for request in trace.requests:
                    await router.submit(
                        FrameRequest(
                            client_id=request.client_id,
                            camera=trace.camera_of(request),
                            gaze=request.gaze,
                        )
                    )
                return [
                    set(shard.frame_cache._entries) for shard in router.shards
                ]

        key_sets = run(scenario())
        for i in range(len(key_sets)):
            for j in range(i + 1, len(key_sets)):
                assert not (key_sets[i] & key_sets[j])

    def test_routing_consistency_and_counters(self, fmodel, cameras):
        async def scenario():
            async with ShardRouter(fmodel, n_shards=4) as router:
                requests = [
                    FrameRequest(i, cameras[i % 4], (7.0 * i + 3.0, 11.0))
                    for i in range(12)
                ]
                shards = [router.shard_of(r) for r in requests]
                for request in requests:
                    await router.submit(request)
                return router, requests, shards

        router, requests, shards = run(scenario())
        # shard_of is stable per request and counters reconcile.
        assert [router.shard_of(r) for r in requests] == shards
        assert router.requests_routed == len(requests)
        assert sum(s["served"] for s in router.stats()["shards"]) == len(requests)
        assert router.imbalance_factor >= 1.0

    def test_model_fingerprint_hashed_once_per_request(
        self, fmodel, cameras, monkeypatch
    ):
        # The request path memoizes fingerprints on the FrameRequest:
        # routing computes the key, the owning shard's cache lookup reuses
        # it — one model hash per request, not two.
        import repro.serve.regions as regions_mod

        calls = {"n": 0}
        real = regions_mod.foveated_model_fingerprint

        def counting(model):
            calls["n"] += 1
            return real(model)

        monkeypatch.setattr(regions_mod, "foveated_model_fingerprint", counting)

        async def scenario():
            async with ShardRouter(fmodel, n_shards=2) as router:
                for i in range(6):
                    await router.submit(
                        FrameRequest(i, cameras[i % 2], (9.0 * i + 4.0, 13.0))
                    )

        run(scenario())
        assert calls["n"] == 6

    def test_validation_and_env_default(self, fmodel, monkeypatch):
        with pytest.raises(ValueError, match="n_shards"):
            ShardRouter(fmodel, n_shards=0)
        monkeypatch.delenv("REPRO_SERVE_SHARDS", raising=False)
        assert default_shards() == 1
        monkeypatch.setenv("REPRO_SERVE_SHARDS", "4")
        assert default_shards() == 4
        # Env-knob hardening: bad values warn and fall back to the
        # built-in default instead of crashing the serve path.
        monkeypatch.setenv("REPRO_SERVE_SHARDS", "0")
        with pytest.warns(RuntimeWarning, match="REPRO_SERVE_SHARDS"):
            assert default_shards() == 1
        monkeypatch.setenv("REPRO_SERVE_SHARDS", "many")
        with pytest.warns(RuntimeWarning, match="non-integer"):
            assert default_shards() == 1


class TestShardedReplay:
    def test_sharded_replay_is_deterministic(self, fmodel, trace):
        _, a = replay_trace_sharded(fmodel, trace, n_shards=3)
        _, b = replay_trace_sharded(fmodel, trace, n_shards=3)
        assert a.frames_checksum == b.frames_checksum
        assert a.cache_hit_rate == b.cache_hit_rate
        assert a.batch_histogram == b.batch_histogram
        assert a.shard_stats == b.shard_stats

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_sharded_frames_match_single_loop(self, fmodel, trace, n_shards):
        # Routing granularity equals cache-key granularity, so sharding
        # never changes which request renders vs hits: the served frame
        # stream (and the aggregate hit rate) is identical to one loop's,
        # for any shard count, on an eviction-free trace.
        _, single = replay_trace(fmodel, trace)
        _, sharded = replay_trace_sharded(fmodel, trace, n_shards=n_shards)
        assert sharded.frames_checksum == single.frames_checksum
        assert sharded.cache_hit_rate == single.cache_hit_rate
        assert sharded.shard_stats["n_shards"] == n_shards

    def test_sharded_with_workers_matches_inline_frames(self, fmodel, trace):
        # The full scale-out stack — shards routing onto a shared worker
        # pool — still serves the exact frame stream of one inline loop.
        _, single = replay_trace(fmodel, trace)
        _, sharded = replay_trace_sharded(
            fmodel,
            trace,
            serve_config=ServeConfig(workers=2),
            n_shards=2,
        )
        assert sharded.frames_checksum == single.frames_checksum
        assert sharded.cache_hit_rate == single.cache_hit_rate

    def test_report_lines_include_shard_columns(self, fmodel, trace):
        _, report = replay_trace_sharded(fmodel, trace, n_shards=2)
        text = "\n".join(report.lines())
        assert "imbalance" in text
        assert "shard 0" in text and "shard 1" in text
        assert "max-queue" in text

    def test_time_scale_validation(self, fmodel, trace):
        with pytest.raises(ValueError, match="time_scale"):
            replay_trace_sharded(fmodel, trace, time_scale=-1.0)
