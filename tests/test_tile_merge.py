"""Tile Merge Unit: grouping semantics and balance improvement."""

import numpy as np
import pytest

from repro.accel.tile_merge import auto_threshold, identity_merge, merge_tiles


class TestMergeTiles:
    def test_work_conserved(self):
        counts = np.array([5.0, 3.0, 100.0, 2.0, 2.0, 50.0])
        merged = merge_tiles(counts, threshold=10.0)
        assert merged.group_counts.sum() == counts.sum()
        assert merged.group_sizes.sum() == counts.size

    def test_groups_contiguous_and_ordered(self):
        counts = np.array([1.0, 1.0, 1.0, 20.0, 1.0])
        merged = merge_tiles(counts, threshold=5.0)
        assert np.all(np.diff(merged.group_of_tile) >= 0)

    def test_small_tiles_merged(self):
        counts = np.full(8, 1.0)
        merged = merge_tiles(counts, threshold=4.0)
        assert merged.num_groups == 2
        assert np.all(merged.group_counts == 4.0)

    def test_oversized_tile_gets_own_group(self):
        counts = np.array([100.0, 1.0, 1.0])
        merged = merge_tiles(counts, threshold=10.0)
        assert merged.group_sizes[0] == 1
        assert merged.group_counts[0] == 100.0

    def test_threshold_never_exceeded_by_merging(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(1, 30, size=100).astype(float)
        merged = merge_tiles(counts, threshold=40.0)
        multi = merged.group_sizes > 1
        assert np.all(merged.group_counts[multi] <= 40.0)

    def test_merging_reduces_imbalance(self):
        rng = np.random.default_rng(1)
        counts = rng.exponential(scale=20.0, size=200)
        base = identity_merge(counts)
        merged = merge_tiles(counts, threshold=2.0 * counts.mean())
        assert merged.imbalance() < base.imbalance()

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            merge_tiles(np.array([1.0]), threshold=0.0)


class TestIdentityMerge:
    def test_one_group_per_tile(self):
        counts = np.array([3.0, 7.0, 1.0])
        merged = identity_merge(counts)
        assert merged.num_groups == 3
        assert np.array_equal(merged.group_counts, counts)


class TestAutoThreshold:
    def test_default_twice_mean(self):
        counts = np.array([10.0, 20.0, 30.0])
        assert auto_threshold(counts) == pytest.approx(40.0)

    def test_target_groups(self):
        counts = np.full(10, 10.0)
        assert auto_threshold(counts, target_groups=5) == pytest.approx(20.0)

    def test_empty_safe(self):
        assert auto_threshold(np.array([])) == 1.0
