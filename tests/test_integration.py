"""Cross-module integration: the paper's end-to-end flows.

Each test exercises a complete pipeline the way a benchmark does, asserting
the *shape* results the paper's evaluation reports.
"""

import numpy as np
import pytest

import repro
from repro.accel import (
    METASAPIENS_BASE,
    METASAPIENS_TM_IP,
    run_accelerator,
)
from repro.baselines import build_baselines
from repro.core import compute_ce, prune_lowest_ce
from repro.foveation import build_foveated_model, FRTrainConfig, render_foveated
from repro.harness import EVAL_REGION_LAYOUT, quick_l1_model
from repro.perf import DEFAULT_GPU, workload_from_fr, workload_from_render
from repro.splat import render


@pytest.fixture(scope="module")
def setup():
    return repro.setup_trace(
        "room", n_points=700, width=96, height=64, n_train=3, n_eval=2
    )


@pytest.fixture(scope="module")
def dense(setup):
    return build_baselines(setup.scene, setup.train_cameras, names=("3DGS",))["3DGS"]


class TestPruningFlow:
    def test_ce_pruning_speeds_up_with_modest_quality_cost(self, setup, dense):
        """Sec 3: CE pruning buys large intersection cuts for small dB."""
        from repro.hvs.metrics import psnr

        ce = compute_ce(dense.model, setup.train_cameras)
        pruned = prune_lowest_ce(dense.model, ce.ce, 0.6).model

        cam, target = setup.eval_cameras[0], setup.eval_targets[0]
        r_dense = render(dense.model, cam)
        r_pruned = render(pruned, cam)
        ints_ratio = (
            r_pruned.stats.total_intersections / r_dense.stats.total_intersections
        )
        quality_drop = psnr(target, r_dense.image) - psnr(target, r_pruned.image)
        assert ints_ratio < 0.75
        assert quality_drop < 6.0


class TestFoveationFlow:
    def test_fr_on_pruned_model_compounds_speedup(self, setup, dense):
        """Fig 12's ladder: pruning then FR reduces workload further."""
        gpu = DEFAULT_GPU
        fps_dense = gpu.fps(workload_from_render(render(dense.model, setup.eval_cameras[0])))

        l1 = quick_l1_model(setup, dense, keep_fraction=0.4)
        fps_l1 = gpu.fps(workload_from_render(render(l1, setup.eval_cameras[0])))

        fr = build_foveated_model(
            l1, setup.train_cameras, setup.train_targets, EVAL_REGION_LAYOUT,
            FRTrainConfig(level_fractions=(1.0, 0.45, 0.22, 0.1), finetune_iterations=0),
            finetune=False,
        ).model
        fps_fr = gpu.fps(workload_from_fr(render_foveated(fr, setup.eval_cameras[0]).stats))

        assert fps_l1 > fps_dense
        assert fps_fr > fps_l1

    def test_hvsq_increases_from_fovea_outward_before_training(self, setup):
        fr = build_foveated_model(
            setup.scene, setup.train_cameras[:2], setup.train_targets[:2],
            EVAL_REGION_LAYOUT,
            FRTrainConfig(level_fractions=(1.0, 0.45, 0.22, 0.1), finetune_iterations=0),
            finetune=False,
        )
        # Level 1 is lossless relative to the GT scene; deeper levels lose
        # quality monotonically in this untrained hierarchy.
        assert fr.hvsq_per_level[0] == pytest.approx(0.0, abs=1e-9)
        assert fr.hvsq_per_level[-1] > fr.hvsq_per_level[0]


class TestAcceleratorFlow:
    def test_fr_frame_through_accelerator(self, setup, dense):
        l1 = quick_l1_model(setup, dense, keep_fraction=0.4)
        fr = build_foveated_model(
            l1, setup.train_cameras, setup.train_targets, EVAL_REGION_LAYOUT,
            FRTrainConfig(level_fractions=(1.0, 0.45, 0.22, 0.1), finetune_iterations=0),
            finetune=False,
        ).model
        result = render_foveated(fr, setup.eval_cameras[0])
        workload = workload_from_fr(result.stats)
        ints = result.stats.raster_intersections_per_tile

        base = run_accelerator(ints, workload, METASAPIENS_BASE)
        tm_ip = run_accelerator(ints, workload, METASAPIENS_TM_IP)
        assert base.speedup > 3.0
        assert tm_ip.speedup >= base.speedup
        assert tm_ip.utilization >= base.utilization

    def test_foveation_worsens_imbalance(self, setup, dense):
        """Sec 5.2: FR concentrates work in foveal tiles, raising the
        per-tile coefficient of variation."""
        l1 = quick_l1_model(setup, dense, keep_fraction=0.5)
        fr = build_foveated_model(
            l1, setup.train_cameras, setup.train_targets, EVAL_REGION_LAYOUT,
            FRTrainConfig(level_fractions=(1.0, 0.35, 0.15, 0.06), finetune_iterations=0),
            finetune=False,
        ).model
        cam = setup.eval_cameras[0]
        dense_ints = render(l1, cam).stats.intersections_per_tile.astype(float)
        fr_ints = render_foveated(fr, cam).stats.raster_intersections_per_tile

        def cv(x):
            x = x[x > 0]
            return x.std() / x.mean() if x.size and x.mean() > 0 else 0.0

        assert cv(fr_ints) > cv(dense_ints) * 0.9  # never meaningfully better


class TestUserStudyFlow:
    def test_study_from_rendered_hvsq(self, setup, dense):
        """Build stimuli from actual renders and run the 2IFC study."""
        from repro.hvs import hvsq
        from repro.study import StimulusQuality, run_user_study

        cam, target = setup.eval_cameras[0], setup.eval_targets[0]
        ours_img = render(dense.model, cam).image  # stand-in rendering
        q = hvsq(target, ours_img, cam).value
        stimuli = {
            "room": (
                StimulusQuality("ours", q, flicker=0.02),
                StimulusQuality("baseline", q, flicker=0.08),
            )
        }
        result = run_user_study(stimuli, seed=0)
        assert 0.0 <= result.p_value <= 1.0
        assert result.total_trials == 96
