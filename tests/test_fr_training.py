"""HVS-guided foveated level training (Sec 4.3)."""

import numpy as np
import pytest

from repro.foveation import (
    FRTrainConfig,
    RegionLayout,
    build_foveated_model,
    finetune_level,
    measure_level_hvsq,
)


@pytest.fixture(scope="module")
def layout():
    return RegionLayout(boundaries_deg=(0.0, 12.0, 20.0, 28.0))


@pytest.fixture(scope="module")
def trained(small_scene, train_cameras, train_targets, layout):
    config = FRTrainConfig(
        level_fractions=(1.0, 0.5, 0.25, 0.1), finetune_iterations=3
    )
    return build_foveated_model(
        small_scene, train_cameras[:2], train_targets[:2], layout, config
    )


class TestBuild:
    def test_subset_chain_holds(self, trained):
        fm = trained.model
        for level in range(2, 5):
            assert np.all(fm.level_mask(level - 1)[fm.level_mask(level)])

    def test_level_budgets(self, trained, small_scene):
        counts = trained.level_counts
        n = small_scene.num_points
        assert counts[0] == n
        assert counts[1] == pytest.approx(0.5 * n, abs=1)
        assert counts[3] == pytest.approx(0.1 * n, abs=1)

    def test_hvsq_reported_per_level(self, trained):
        assert len(trained.hvsq_per_level) == 4
        assert all(np.isfinite(v) and v >= 0 for v in trained.hvsq_per_level)

    def test_wrong_fraction_count_rejected(self, small_scene, train_cameras, train_targets, layout):
        with pytest.raises(ValueError):
            build_foveated_model(
                small_scene,
                train_cameras[:1],
                train_targets[:1],
                layout,
                FRTrainConfig(level_fractions=(1.0, 0.5)),
            )

    def test_ce_keeps_useful_points(self, trained, small_scene, train_cameras):
        """Deeper levels must preferentially keep points that dominate
        pixels (high CE), not a random subset."""
        from repro.core.ce import compute_ce

        ce = compute_ce(small_scene, train_cameras[:2])
        fm = trained.model
        deep = fm.quality_bounds >= 3
        shallow = fm.quality_bounds == 1
        assert ce.ce[deep].mean() > ce.ce[shallow].mean()


class TestFinetuneLevel:
    def test_improves_region_quality(self, small_scene, train_cameras, train_targets, layout):
        config = FRTrainConfig(level_fractions=(1.0, 0.5, 0.25, 0.1), finetune_iterations=0)
        result = build_foveated_model(
            small_scene, train_cameras[:2], train_targets[:2], layout, config,
            finetune=False,
        )
        fm = result.model
        level = 3
        before = measure_level_hvsq(fm, level, train_cameras[:2], train_targets[:2])
        finetune_level(
            fm, level, train_cameras[:2], train_targets[:2],
            FRTrainConfig(level_fractions=(1.0, 0.5, 0.25, 0.1), finetune_iterations=6),
        )
        after = measure_level_hvsq(fm, level, train_cameras[:2], train_targets[:2])
        assert after <= before * 1.05  # never substantially worse, usually better

    def test_only_target_level_versions_touched(
        self, small_scene, train_cameras, train_targets, layout
    ):
        config = FRTrainConfig(level_fractions=(1.0, 0.5, 0.25, 0.1), finetune_iterations=0)
        fm = build_foveated_model(
            small_scene, train_cameras[:1], train_targets[:1], layout, config,
            finetune=False,
        ).model
        before_l2 = fm.mv_opacity_logits[:, 1].copy()
        before_l4 = fm.mv_opacity_logits[:, 3].copy()
        finetune_level(
            fm, 4, train_cameras[:1], train_targets[:1],
            FRTrainConfig(level_fractions=(1.0, 0.5, 0.25, 0.1), finetune_iterations=2),
        )
        assert np.array_equal(fm.mv_opacity_logits[:, 1], before_l2)
        assert not np.array_equal(fm.mv_opacity_logits[:, 3], before_l4)

    def test_base_parameters_never_touched(
        self, small_scene, train_cameras, train_targets, layout
    ):
        config = FRTrainConfig(level_fractions=(1.0, 0.5, 0.25, 0.1), finetune_iterations=2)
        base_before = small_scene.copy()
        build_foveated_model(
            small_scene, train_cameras[:1], train_targets[:1], layout, config
        )
        assert np.array_equal(small_scene.log_scales, base_before.log_scales)
        assert np.array_equal(small_scene.positions, base_before.positions)
