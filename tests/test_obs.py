"""The observability tentpole: repro.obs metrics + tracing contracts.

Covers the metric primitives (int-like counters, callback gauges,
mergeable log-bucket histograms, registry snapshots/exposition), the
span tracer (nesting/ordering, ring eviction, clock injection, Chrome
trace-event schema), cross-process worker-span stitching under both
fork and spawn, the cache counter-neutrality pins (peek/contains/
degraded_alternate vs get), the serve clock seam (deterministic
deadlines under a fake clock), and merged-across-shards stage
percentiles in replay reports.
"""

import asyncio
import json
import math
import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.foveation import uniform_foveated_model
from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_SPAN,
    Tracer,
    active_tracer,
    backend_span,
    delta,
    set_active_tracer,
)
from repro.scenes import trace_cameras
from repro.serve import (
    FrameCache,
    ServeConfig,
    WorkloadSpec,
    generate_serve_trace,
    replay_trace,
    replay_trace_sharded,
)
from repro.serve.regions import GazeRegionKey
from repro.serve.workers import RenderWorkerPool
from repro.splat import ViewCache, random_model
from repro.splat.renderer import prepare_view

WIDTH, HEIGHT = 64, 48
TIMEOUT_S = 120


@pytest.fixture(autouse=True)
def obs_timeout():
    """Watchdog: a hung worker pool fails fast instead of stalling CI."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(f"obs test exceeded {TIMEOUT_S}s watchdog")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


# -- metrics primitives ------------------------------------------------------


class TestCounter:
    def test_int_like_call_sites_unchanged(self):
        # The exact idioms the caches use: +=, comparisons, division,
        # formatting.  The migration must change zero call sites.
        c = Counter()
        before = id(c)
        c += 3
        assert id(c) == before  # identity survives +=: registry stays live
        assert c == 3
        assert c != 2
        assert c < 4 and c <= 3 and c > 2 and c >= 3
        assert c + 1 == 4 and 1 + c == 4
        assert c - 1 == 2 and 10 - c == 7
        assert c / 2 == 1.5 and 6 / c == 2.0
        assert c * 2 == 6 and c // 2 == 1 and c % 2 == 1
        assert int(c) == 3 and float(c) == 3.0 and -c == -3
        assert f"{c:4d}" == "   3" and f"{c}" == "3"
        assert bool(c) and not bool(Counter())
        assert list(range(5))[c] == 3  # __index__

    def test_inc_and_reset(self):
        c = Counter(5)
        c.inc()
        c.inc(4)
        assert c.value == 10
        c.reset()
        assert c == 0


class TestGauge:
    def test_set_and_value(self):
        g = Gauge()
        g.set(2.5)
        assert g.value == 2.5

    def test_callback_gauge_reads_live_state(self):
        state = {"n": 1}
        g = Gauge(fn=lambda: state["n"])
        assert g.value == 1
        state["n"] = 7
        assert g.value == 7
        with pytest.raises(ValueError):
            g.set(3.0)


class TestHistogram:
    def test_basic_moments(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.004):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.007)
        assert h.mean() == pytest.approx(0.007 / 3)
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(0.004)

    def test_empty_histogram_is_all_zero(self):
        h = Histogram()
        assert h.count == 0 and h.sum == 0.0
        assert h.mean() == 0.0 and h.min == 0.0 and h.max == 0.0
        assert h.percentile(50.0) == 0.0

    def test_percentile_within_bucket_resolution(self):
        # growth=1.2 buckets bound the relative error at ~10%: the
        # geometric midpoint of the rank bucket is within sqrt(growth)
        # of any sample inside it.
        rng = np.random.default_rng(0)
        samples = rng.lognormal(mean=-5.0, sigma=1.0, size=4000)
        h = Histogram()
        for v in samples:
            h.observe(float(v))
        for q in (50.0, 90.0, 99.0):
            true = float(np.percentile(samples, q))
            got = h.percentile(q)
            assert abs(got - true) / true < 0.12, (q, got, true)

    def test_underflow_bucket(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(1e-9)
        assert h.buckets() == {-1: 2}
        assert h.percentile(50.0) <= h.v0

    def test_merge_equals_histogram_of_concatenation(self):
        rng = np.random.default_rng(1)
        a, b = rng.exponential(0.01, 300), rng.exponential(0.05, 700)
        ha, hb, hall = Histogram(), Histogram(), Histogram()
        for v in a:
            ha.observe(float(v))
            hall.observe(float(v))
        for v in b:
            hb.observe(float(v))
            hall.observe(float(v))
        merged = Histogram.merged([ha, hb])
        assert merged.buckets() == hall.buckets()
        assert merged.count == 1000
        assert merged.sum == pytest.approx(hall.sum)
        assert merged.min == pytest.approx(hall.min)
        assert merged.max == pytest.approx(hall.max)
        for q in (50.0, 90.0, 99.0):
            assert merged.percentile(q) == hall.percentile(q)

    def test_merged_percentile_beats_mean_of_shard_percentiles(self):
        # The bug class satellite 3 removes: averaging per-shard p90s.
        # One idle-ish shard (fast) + one loaded shard (slow): the true
        # p90 of the union sits in the slow population, while the mean of
        # per-shard p90s lands nowhere meaningful.
        fast, slow = Histogram(), Histogram()
        fast_samples = [0.001] * 90 + [0.002] * 10
        slow_samples = [0.100] * 900 + [0.200] * 100
        for v in fast_samples:
            fast.observe(v)
        for v in slow_samples:
            slow.observe(v)
        merged = Histogram.merged([fast, slow])
        true_p90 = float(np.percentile(fast_samples + slow_samples, 90))
        mean_of_p90 = (fast.percentile(90.0) + slow.percentile(90.0)) / 2
        merged_err = abs(merged.percentile(90.0) - true_p90) / true_p90
        naive_err = abs(mean_of_p90 - true_p90) / true_p90
        assert merged_err < 0.12
        assert naive_err > 0.4  # the naive estimate is catastrophically off

    def test_merge_rejects_mismatched_geometry(self):
        with pytest.raises(ValueError, match="geometry"):
            Histogram().merge(Histogram(growth=2.0))


class TestRegistry:
    def test_register_attaches_live_objects(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c += 2
        assert reg.snapshot() == {"hits": 2}
        c.inc()
        assert reg.snapshot() == {"hits": 3}

    def test_labels_render_and_key_separately(self):
        reg = MetricsRegistry()
        reg.counter("req", shard="0").inc(1)
        reg.counter("req", shard="1").inc(5)
        snap = reg.snapshot()
        assert snap == {'req{shard="0"}': 1, 'req{shard="1"}': 5}
        assert reg.get("req", shard="1").value == 5
        assert len(reg) == 2 and reg.names() == ["req"]

    def test_reregistration_replaces(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(9)
        fresh = Counter()
        reg.register("n", fresh)
        assert reg.snapshot() == {"n": 0}

    def test_unregister(self):
        reg = MetricsRegistry()
        reg.counter("n")
        reg.unregister("n")
        assert len(reg) == 0

    def test_rejects_non_metrics(self):
        with pytest.raises(TypeError):
            MetricsRegistry().register("x", 42)

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("hits", help="cache hits", shard="0").inc(3)
        reg.gauge_fn("depth", lambda: 4.0)
        h = reg.histogram("lat_seconds")
        h.observe(0.01)
        h.observe(0.02)
        text = reg.render_prometheus()
        assert "# HELP hits cache hits" in text
        assert "# TYPE hits counter" in text
        assert 'hits{shard="0"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 4" in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        assert "lat_seconds_sum 0.03" in text
        # Bucket counts are cumulative and end at the total.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("lat_seconds_bucket")
        ]
        assert counts == sorted(counts) and counts[-1] == 2

    def test_delta_meters_an_interval(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        h = reg.histogram("lat")
        c.inc(2)
        h.observe(0.5)
        prev = reg.snapshot()
        c.inc(3)
        h.observe(1.5)
        d = delta(prev, reg.snapshot())
        assert d["n"] == 3
        assert d["lat"]["count"] == 1
        assert d["lat"]["sum"] == pytest.approx(1.5)


# -- tracer ------------------------------------------------------------------


class FakeClock:
    """Deterministic clock: advances ``step`` seconds per call."""

    def __init__(self, start: float = 0.0, step: float = 1.0):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestTracer:
    def test_span_nesting_and_ordering(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = tracer.spans()
        # Inner closes first (post-order append); outer encloses inner.
        assert [s[0] for s in spans] == ["inner", "outer"]
        (_, _, i0, i1, _, _, _), (_, _, o0, o1, _, _, _) = spans
        assert o0 < i0 < i1 < o1

    def test_add_records_existing_stamps(self):
        tracer = Tracer()
        tracer.add("queue-wait", "serve", 1.0, 2.5, tid=101, args={"n": 1})
        (name, cat, t0, t1, pid, tid, args) = tracer.spans()[0]
        assert (name, cat, t0, t1, tid) == ("queue-wait", "serve", 1.0, 2.5, 101)
        assert pid == os.getpid()
        assert args == {"n": 1}

    def test_ring_eviction_counts_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(6):
            tracer.add(f"s{i}", "t", float(i), float(i) + 0.5)
        assert len(tracer) == 4
        assert tracer.dropped == 2
        assert [s[0] for s in tracer.spans()] == ["s2", "s3", "s4", "s5"]
        assert tracer.to_chrome_trace()["otherData"]["dropped_spans"] == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_chrome_trace_schema(self):
        tracer = Tracer(pid=1234)
        tracer.add("a", "serve", 2.0, 2.001, tid=0)
        tracer.add("b", "backend", 2.0005, 2.0007, tid=100, args={"n": 3})
        tracer.name_thread(0, "batcher")
        tracer.name_process(999, "render-worker 999")
        doc = tracer.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        ms = [e for e in events if e["ph"] == "M"]
        for e in xs:
            assert set(("name", "cat", "ph", "ts", "dur", "pid", "tid")) <= set(e)
        # Timestamps rebase to the earliest span and convert to µs.
        assert min(e["ts"] for e in xs) == 0.0
        b = next(e for e in xs if e["name"] == "b")
        assert b["ts"] == pytest.approx(500.0)
        assert b["dur"] == pytest.approx(200.0)
        assert b["args"] == {"n": 3}
        assert {(e["name"], e["args"]["name"]) for e in ms} == {
            ("thread_name", "batcher"),
            ("process_name", "render-worker 999"),
        }

    def test_adopt_stitches_foreign_pid(self):
        parent = Tracer(clock=FakeClock())
        worker = Tracer(clock=FakeClock(start=10.0), pid=4321)
        with worker.span("render", args={"gazes": 2}):
            pass
        compact = worker.drain_compact()
        assert len(worker) == 0  # drained
        parent.adopt(compact, pid=4321, process_label="render-worker 4321")
        (name, _, _, _, pid, _, args) = parent.spans()[0]
        assert (name, pid, args) == ("render", 4321, {"gazes": 2})
        doc = parent.to_chrome_trace()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(
            e["pid"] == 4321 and e["args"]["name"] == "render-worker 4321"
            for e in meta
        )

    def test_write_round_trips_json(self, tmp_path):
        tracer = Tracer()
        tracer.add("a", "t", 0.0, 0.1)
        path = tmp_path / "trace.json"
        assert tracer.write(path) == 1
        doc = json.loads(path.read_text())
        assert [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"] == ["a"]


class TestActiveTracerSeam:
    def test_backend_span_is_null_when_inactive(self):
        assert active_tracer() is None
        assert backend_span("prepare") is NULL_SPAN

    def test_activation_scopes_and_restores(self):
        tracer = Tracer(clock=FakeClock())
        prev = set_active_tracer(tracer)
        try:
            assert prev is None
            with backend_span("prepare", args={"w": 64}):
                pass
        finally:
            restored = set_active_tracer(prev)
        assert restored is tracer
        assert active_tracer() is None
        (name, cat, _, _, _, _, args) = tracer.spans()[0]
        assert (name, cat, args) == ("prepare", "backend", {"w": 64})

    def test_prepare_view_records_backend_span(self):
        from repro.splat.renderer import RenderConfig

        model = random_model(30, np.random.default_rng(0))
        _, cams = trace_cameras(
            "kitchen", n_train=4, n_eval=1, width=WIDTH, height=HEIGHT
        )
        tracer = Tracer()
        prev = set_active_tracer(tracer)
        try:
            prepare_view(model, cams[0], RenderConfig())
        finally:
            set_active_tracer(prev)
        names = [s[0] for s in tracer.spans()]
        assert "prepare" in names


# -- cache counter pins ------------------------------------------------------


def _fake_frame(nbytes: int = 1024):
    return np.zeros(nbytes, dtype=np.uint8)


def _key(region: GazeRegionKey, camera_fp: str = "cam0") -> tuple:
    return ("model0", camera_fp, region, "cfg0")


class TestFrameCacheCounters:
    def test_get_counts_peek_does_not(self):
        cache = FrameCache(max_bytes=1 << 20)
        key = _key(GazeRegionKey(0, 0))
        assert cache.get(key) is None  # miss
        cache.put(key, _fake_frame())
        assert cache.get(key) is not None  # hit
        assert cache.peek(key) is not None  # counter-neutral
        assert cache.peek(_key(GazeRegionKey(1, 0))) is None  # neutral miss
        assert cache.contains(key)  # neutral both ways
        assert not cache.contains(_key(GazeRegionKey(1, 1)))
        assert (int(cache.hits), int(cache.misses)) == (1, 1)

    def test_degraded_alternate_is_counter_neutral(self):
        cache = FrameCache(max_bytes=1 << 20)
        cache.put(_key(GazeRegionKey(1, 0)), _fake_frame())
        # Same pose, different region: a degrade candidate exists, and
        # finding it moves no counter.
        assert cache.degraded_alternate(_key(GazeRegionKey(0, 0))) is not None
        assert cache.degraded_alternate(_key(GazeRegionKey(0, 0), "cam1")) is None
        assert (int(cache.hits), int(cache.misses)) == (0, 0)

    def test_peek_refreshes_recency_like_get(self):
        cache = FrameCache(max_bytes=2048 + 256)
        a, b = _key(GazeRegionKey(0, 0)), _key(GazeRegionKey(1, 0))
        cache.put(a, _fake_frame(1024))
        cache.put(b, _fake_frame(1024))
        cache.peek(a)  # refresh a: b becomes LRU
        cache.put(_key(GazeRegionKey(2, 0)), _fake_frame(1024))  # evicts b
        assert cache.contains(a) and not cache.contains(b)
        assert int(cache.evictions) == 1

    def test_contains_is_recency_neutral(self):
        cache = FrameCache(max_bytes=2048 + 256)
        a, b = _key(GazeRegionKey(0, 0)), _key(GazeRegionKey(1, 0))
        cache.put(a, _fake_frame(1024))
        cache.put(b, _fake_frame(1024))
        cache.contains(a)  # must NOT refresh a: a stays LRU
        cache.put(_key(GazeRegionKey(2, 0)), _fake_frame(1024))  # evicts a
        assert not cache.contains(a) and cache.contains(b)

    def test_stats_is_thin_view_and_registry_stays_live(self):
        cache = FrameCache(max_bytes=1 << 20)
        reg = MetricsRegistry()
        cache.register_metrics(reg)
        key = _key(GazeRegionKey(0, 0))
        cache.get(key)
        cache.put(key, _fake_frame())
        cache.get(key)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert isinstance(stats["hits"], int)  # plain data, JSON-safe
        snap = reg.snapshot()
        assert snap["frame_cache_hits"] == 1
        assert snap["frame_cache_misses"] == 1
        assert snap["frame_cache_entries"] == 1
        assert snap["frame_cache_bytes"] == cache.current_bytes


class TestViewCacheCounters:
    def test_hits_misses_evictions_and_registry(self):
        model = random_model(30, np.random.default_rng(0))
        _, cams = trace_cameras(
            "kitchen", n_train=4, n_eval=3, width=WIDTH, height=HEIGHT
        )
        cache = ViewCache(maxsize=2)
        reg = MetricsRegistry()
        cache.register_metrics(reg)
        cache.get(model, cams[0])
        cache.get(model, cams[0])  # hit
        cache.get(model, cams[1])
        cache.get(model, cams[2])  # evicts cams[0]
        cache.get(model, cams[0])  # miss again after eviction
        stats = cache.stats()
        assert stats == {"hits": 1, "misses": 4, "evictions": 2, "entries": 2}
        snap = reg.snapshot()
        assert snap["view_cache_hits"] == 1
        assert snap["view_cache_misses"] == 4
        assert snap["view_cache_evictions"] == 2
        assert snap["view_cache_entries"] == 2


# -- serve integration -------------------------------------------------------


@pytest.fixture(scope="module")
def serve_env():
    fmodel = uniform_foveated_model(
        random_model(60, np.random.default_rng(2)),
        EVAL_REGION_LAYOUT,
        EVAL_LEVEL_FRACTIONS,
    )
    _, poses = trace_cameras(
        "kitchen", n_train=4, n_eval=3, width=WIDTH, height=HEIGHT
    )
    trace = generate_serve_trace(
        poses, WorkloadSpec(n_clients=3, frames_per_client=6, seed=0)
    )
    return fmodel, trace


class TestTracedReplay:
    def test_single_loop_trace_covers_the_lifecycle(self, serve_env):
        fmodel, trace = serve_env
        tracer = Tracer()
        _, report = replay_trace(fmodel, trace, tracer=tracer)
        names = {s[0] for s in tracer.spans()}
        assert {
            "batch-form",
            "queue-wait",
            "dedup",
            "render-group",
            "request",
            "prepare",
        } <= names
        # Client request lanes live above CLIENT_TID_BASE, batcher on 0.
        tids = {s[5] for s in tracer.spans() if s[0] == "request"}
        assert tids and all(t >= Tracer.CLIENT_TID_BASE for t in tids)
        # Every request got a queue-wait and a request span.
        n = trace.n_requests
        assert sum(1 for s in tracer.spans() if s[0] == "request") == n
        assert sum(1 for s in tracer.spans() if s[0] == "queue-wait") == n

    def test_serve_config_trace_auto_enables(self, serve_env):
        fmodel, trace = serve_env
        _, report = replay_trace(
            fmodel, trace, serve_config=ServeConfig(trace=True)
        )
        assert report.stage_breakdown["total"]["count"] == trace.n_requests

    def test_stage_breakdown_in_report_and_lines(self, serve_env):
        fmodel, trace = serve_env
        _, report = replay_trace(fmodel, trace)
        bd = report.stage_breakdown
        assert set(bd) == {"queue", "render", "total"}
        assert bd["queue"]["count"] == trace.n_requests
        assert bd["total"]["count"] == trace.n_requests
        assert 0 < bd["render"]["count"] <= trace.n_requests
        for stage in bd.values():
            assert stage["p50_ms"] <= stage["p90_ms"] <= stage["p99_ms"]
        text = "\n".join(report.lines())
        assert "stage queue" in text and "stage render" in text

    def test_sharded_breakdown_merges_histograms(self, serve_env):
        fmodel, trace = serve_env
        _, report = replay_trace_sharded(fmodel, trace, n_shards=2)
        assert report.stage_breakdown["total"]["count"] == trace.n_requests
        assert report.stage_breakdown["queue"]["count"] == trace.n_requests

    def test_sharded_trace_shares_one_tracer(self, serve_env):
        fmodel, trace = serve_env
        tracer = Tracer()
        replay_trace_sharded(fmodel, trace, n_shards=2, tracer=tracer)
        batcher_tids = {
            s[5] for s in tracer.spans() if s[0] in ("batch-form", "render-group")
        }
        # Both shards recorded onto their own batcher lanes.
        assert batcher_tids == {0, 1}

    def test_registry_attached_replay_reports_metrics(self, serve_env):
        fmodel, trace = serve_env
        reg = MetricsRegistry()
        responses, report = replay_trace(fmodel, trace, registry=reg)
        assert report.metrics is not None
        hits = sum(1 for r in responses if r.cache_hit)
        assert report.metrics["frame_cache_hits"] == hits
        assert report.metrics["serve_requests_served"] == trace.n_requests
        assert (
            report.metrics["serve_stage_total_seconds"]["count"]
            == trace.n_requests
        )

    def test_sharded_registry_labels_per_shard(self, serve_env):
        fmodel, trace = serve_env
        reg = MetricsRegistry()
        _, report = replay_trace_sharded(fmodel, trace, n_shards=2, registry=reg)
        snap = report.metrics
        served = [
            v for k, v in snap.items() if k.startswith("serve_requests_served")
        ]
        assert len(served) == 2 and sum(served) == trace.n_requests

    def test_untraced_replay_records_no_spans(self, serve_env):
        # Tracing off must leave the process-global seam untouched.
        fmodel, trace = serve_env
        replay_trace(fmodel, trace)
        assert active_tracer() is None


class TestClockSeam:
    def test_frozen_clock_serves_every_deadline(self, serve_env):
        # With a clock that never advances, zero time elapses between
        # submit and resolve: every deadline-carrying request is on time.
        fmodel, trace = serve_env
        frozen = lambda: 100.0  # noqa: E731
        _, report = replay_trace(
            fmodel,
            trace,
            serve_config=ServeConfig(refresh_hz=60.0, degrade_on_deadline=False),
            clock=frozen,
        )
        assert report.deadline_miss_rate == 0.0
        assert report.stage_breakdown["total"]["count"] == trace.n_requests
        assert report.stage_breakdown["total"]["p99_ms"] == 0.0

    def test_giant_step_clock_misses_every_deadline(self, serve_env):
        # Each clock() call advances 1000 s: every render lands aeons
        # past its 16 ms budget, deterministically.
        fmodel, trace = serve_env
        _, report = replay_trace(
            fmodel,
            trace,
            serve_config=ServeConfig(refresh_hz=60.0, degrade_on_deadline=False),
            clock=FakeClock(step=1000.0),
        )
        assert report.deadline_miss_rate == 1.0

    def test_fake_clock_threads_through_tracer(self, serve_env):
        fmodel, trace = serve_env
        tracer = Tracer(clock=FakeClock(step=0.5))
        replay_trace(fmodel, trace, tracer=tracer, clock=tracer.clock)
        spans = tracer.spans()
        assert spans
        # Every stamp came from the fake clock: multiples of 0.5 s.
        for (_, _, t0, t1, _, _, _) in spans:
            assert math.isclose(t0 % 0.5, 0.0, abs_tol=1e-9) or math.isclose(
                t0 % 0.5, 0.5, abs_tol=1e-9
            )
            assert t1 >= t0


def _start_methods():
    methods = multiprocessing.get_all_start_methods()
    return [m for m in ("fork", "spawn") if m in methods]


class TestWorkerSpanStitching:
    @pytest.mark.parametrize("mp_start", _start_methods())
    def test_worker_spans_stitch_across_the_pipe(self, serve_env, mp_start):
        fmodel, _ = serve_env
        _, cams = trace_cameras(
            "kitchen", n_train=4, n_eval=1, width=WIDTH, height=HEIGHT
        )
        tracer = Tracer()
        sink: dict = {}

        async def burst(pool):
            sink["results"] = await pool.render(
                cams[0], [(5.0, 5.0), None], tracer=tracer
            )

        with RenderWorkerPool(fmodel, workers=1, mp_start=mp_start) as pool:
            asyncio.run(burst(pool))

        assert len(sink["results"]) == 2
        spans = tracer.spans()
        parent_pid = os.getpid()
        worker_pids = {s[4] for s in spans} - {parent_pid}
        assert len(worker_pids) == 1  # one worker, its own process row
        worker_names = {s[0] for s in spans if s[4] != parent_pid}
        assert "render" in worker_names
        assert "prepare" in worker_names  # backend spans rode the seam too
        # The parent recorded its receive side in the same timeline.
        assert "materialize" in {s[0] for s in spans if s[4] == parent_pid}
        # Same clock domain: worker spans interleave sensibly (all spans
        # fall inside the parent's observed window, no translation).
        meta = [
            e
            for e in tracer.to_chrome_trace()["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert any(e["pid"] in worker_pids for e in meta)

    @pytest.mark.parametrize("mp_start", _start_methods())
    def test_untraced_pool_ships_no_spans(self, serve_env, mp_start):
        fmodel, _ = serve_env
        _, cams = trace_cameras(
            "kitchen", n_train=4, n_eval=1, width=WIDTH, height=HEIGHT
        )
        sink: dict = {}

        async def burst(pool):
            sink["results"] = await pool.render(cams[0], [None])

        with RenderWorkerPool(fmodel, workers=1, mp_start=mp_start) as pool:
            asyncio.run(burst(pool))
        assert len(sink["results"]) == 1


class TestCLI:
    def test_serve_sim_trace_flag_writes_chrome_json(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.json"
        code = main(
            [
                "serve-sim", "bonsai", "--points", "150", "--width", "48",
                "--height", "36", "--clients", "2", "--frames", "4",
                "--poses", "3", "--workers", "0", "--shards", "1",
                "--trace", str(path),
            ]
        )
        assert code == 0
        assert "trace:" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert events
        for e in events:
            assert set(("name", "cat", "ph", "ts", "dur", "pid", "tid")) <= set(e)
        assert {"batch-form", "request"} <= {e["name"] for e in events}

    def test_metrics_command_prints_exposition(self, capsys):
        from repro.cli import main

        code = main(
            [
                "metrics", "bonsai", "--points", "150", "--width", "48",
                "--height", "36", "--clients", "2", "--frames", "4",
                "--poses", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE frame_cache_hits counter" in out
        assert "# TYPE serve_stage_total_seconds histogram" in out
        assert "serve_requests_served" in out
