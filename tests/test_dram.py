"""DRAM model: bandwidth arithmetic, traffic composition, bound reporting."""

import dataclasses

import numpy as np
import pytest

from repro.accel import (
    DEFAULT_DRAM,
    DRAMModel,
    METASAPIENS_BASE,
    bound_latency_ms,
    dram_time_ms,
    frame_traffic,
    is_memory_bound,
    run_accelerator,
)
from repro.perf import FrameWorkload


@pytest.fixture()
def workload():
    return FrameWorkload(
        num_projected=1000,
        projection_runs=1,
        sort_ops=5e4,
        raster_splat_pixels=5000 * 256,
        blend_pixels=500,
    )


class TestDRAMModel:
    def test_peak_bandwidth(self):
        # 4 channels × 1600 MT/s × 4 B = 25.6 GB/s (paper's LPDDR3-1600 x4).
        assert DEFAULT_DRAM.peak_gb_s == pytest.approx(25.6)

    def test_utilization_derates(self):
        ideal = DRAMModel(utilization=1.0)
        real = DRAMModel(utilization=0.5)
        assert real.effective_bytes_per_us == pytest.approx(
            0.5 * ideal.effective_bytes_per_us
        )


class TestTraffic:
    def test_components_positive(self, workload):
        traffic = frame_traffic(workload, METASAPIENS_BASE)
        assert traffic.parameter_read > 0
        assert traffic.intersection_spill > 0
        assert traffic.framebuffer_write > 0
        assert traffic.total_bytes == pytest.approx(
            traffic.parameter_read
            + traffic.intersection_spill
            + traffic.framebuffer_write
        )

    def test_mmfr_reads_parameters_per_level(self, workload):
        mmfr = dataclasses.replace(workload, projection_runs=4)
        t1 = frame_traffic(workload, METASAPIENS_BASE)
        t4 = frame_traffic(mmfr, METASAPIENS_BASE)
        assert t4.parameter_read == pytest.approx(4 * t1.parameter_read)

    def test_time_scales_inverse_bandwidth(self, workload):
        fast = DRAMModel(channels=8)
        slow = DRAMModel(channels=2)
        assert dram_time_ms(workload, METASAPIENS_BASE, slow) == pytest.approx(
            4 * dram_time_ms(workload, METASAPIENS_BASE, fast)
        )


class TestBound:
    def test_is_memory_bound_threshold(self, workload):
        t = dram_time_ms(workload, METASAPIENS_BASE)
        assert is_memory_bound(t / 2, workload, METASAPIENS_BASE)
        assert not is_memory_bound(t * 2, workload, METASAPIENS_BASE)

    def test_bound_latency_is_max(self, workload):
        t = dram_time_ms(workload, METASAPIENS_BASE)
        assert bound_latency_ms(t / 2, workload, METASAPIENS_BASE) == pytest.approx(t)
        assert bound_latency_ms(t * 3, workload, METASAPIENS_BASE) == pytest.approx(3 * t)

    def test_run_reports_but_does_not_apply_by_default(self, workload):
        ints = np.full(20, 250.0)
        default = run_accelerator(ints, workload, METASAPIENS_BASE)
        bounded = run_accelerator(ints, workload, METASAPIENS_BASE, include_dram=True)
        assert default.latency_ms == pytest.approx(default.compute_ms)
        assert bounded.latency_ms >= default.latency_ms
        assert bounded.latency_ms == pytest.approx(
            max(default.compute_ms, default.dram_ms)
        )
