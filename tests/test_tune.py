"""The autotuning stack: cost model, profiles, knee fits, knob precedence.

The load-bearing contract is the resolution precedence every consumer
shares — explicit argument > environment variable > host profile >
built-in default — plus the degrade-don't-crash rules: malformed env
values warn and fall through, corrupted profiles warn and resolve as
"untuned", individually invalid profile knobs are dropped while the rest
still apply.
"""

from __future__ import annotations

import json
import os
import warnings

import pytest

from repro.serve.regions import (
    DEFAULT_FRAME_CACHE_BYTES,
    FRAME_CACHE_BYTES_ENV,
    FrameCache,
    resolved_cache_bytes,
)
from repro.serve.scheduler import (
    BATCH_BUDGET_ENV,
    BATCH_DEADLINE_ENV,
    DEFAULT_BATCH_BUDGET,
    ServeConfig,
    resolved_batch_budget,
    resolved_batch_deadline,
)
from repro.splat.backends.packed import (
    DEFAULT_SPAN_CHUNK_BUDGET,
    DEFAULT_TILE_SPAN_BUDGET,
    SPAN_BUDGET_ENV,
    TILE_BUDGET_ENV,
    span_chunk_budget,
    tile_span_budget,
)
from repro.tune import fit_knee, invalidate_profile_cache, profile_source
from repro.tune.model import (
    CacheLevel,
    SpanCostModel,
    detect_cache_levels,
    llc_bytes,
    span_cost_model,
)
from repro.tune.profile import (
    PROFILE_ENV,
    HostProfile,
    host_fingerprint,
    load_host_profile,
    profile_value,
    save_host_profile,
)


@pytest.fixture(autouse=True)
def _fresh_profile_cache():
    invalidate_profile_cache()
    yield
    invalidate_profile_cache()


def _write_profile(path, knobs, **extra):
    payload = {"version": 1, "host": "test", "knobs": knobs, **extra}
    with open(path, "w") as f:
        json.dump(payload, f)
    invalidate_profile_cache()
    return str(path)


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------


class TestCacheDetection:
    def _sysfs(self, tmp_path, levels):
        root = tmp_path / "cache"
        for i, (level, size, kind) in enumerate(levels):
            d = root / f"index{i}"
            d.mkdir(parents=True)
            (d / "level").write_text(f"{level}\n")
            (d / "size").write_text(f"{size}\n")
            (d / "type").write_text(f"{kind}\n")
        return str(root)

    def test_detects_levels(self, tmp_path):
        root = self._sysfs(
            tmp_path,
            [(1, "32K", "Data"), (1, "32K", "Instruction"),
             (2, "1024K", "Unified"), (3, "8M", "Unified")],
        )
        levels = detect_cache_levels(root)
        assert [(l.level, l.kind) for l in levels] == [
            (1, "Data"), (1, "Instruction"), (2, "Unified"), (3, "Unified"),
        ]
        assert levels[0].size_bytes == 32 << 10
        assert levels[3].size_bytes == 8 << 20

    def test_llc_is_largest_top_level_non_instruction(self, tmp_path):
        root = self._sysfs(
            tmp_path,
            [(1, "32K", "Data"), (2, "512K", "Unified"), (3, "16M", "Unified")],
        )
        assert llc_bytes(root) == 16 << 20

    def test_missing_sysfs_degrades(self, tmp_path):
        assert detect_cache_levels(str(tmp_path / "nope")) == ()
        assert llc_bytes(str(tmp_path / "nope")) is None
        assert span_cost_model(root=str(tmp_path / "nope")) is None

    def test_span_cost_model_prediction(self, tmp_path):
        root = self._sysfs(tmp_path, [(3, "8M", "Unified")])
        model = span_cost_model(root=root)
        assert model is not None
        expected = int((8 << 20) * 0.5 / model.bytes_per_span)
        assert model.predicted_span_budget == expected
        assert model.working_set_bytes(expected) <= 8 << 20
        assert model.overflows_llc(10 * expected)
        assert not model.overflows_llc(expected)

    def test_model_math(self):
        m = SpanCostModel(llc_bytes=1000, bytes_per_span=100)
        assert m.predicted_span_budget == 5
        assert m.working_set_bytes(7) == 700
        # margin 1.25: overflow needs > 1250 bytes of working set
        assert not m.overflows_llc(12)
        assert m.overflows_llc(13)

    def test_bytes_per_span_matches_kernels(self):
        from repro.splat.backends.kernels import batch_scan_bytes_per_span

        assert batch_scan_bytes_per_span(16) == 5 * 16 * 8 + 2 * 16 + 64
        model = SpanCostModel(llc_bytes=1 << 20, bytes_per_span=1)
        assert model.predicted_span_budget >= 1
        assert CacheLevel(3, 1 << 20, "Unified").size_bytes == 1 << 20


# ----------------------------------------------------------------------
# Knee fitting
# ----------------------------------------------------------------------


class TestKneeFit:
    def test_picks_smallest_on_plateau(self):
        fit = fit_knee([1, 2, 4, 8], [50.0, 97.0, 100.0, 99.0], tolerance=0.05)
        assert fit.selected == 2
        assert fit.best == 4
        assert fit.relative >= 0.95

    def test_argmax_when_tolerance_zero(self):
        fit = fit_knee([1, 2, 4], [50.0, 97.0, 100.0], tolerance=0.0)
        assert fit.selected == 4

    def test_unsorted_and_duplicate_settings(self):
        fit = fit_knee([8, 2, 2, 4], [99.0, 60.0, 98.0, 100.0])
        assert fit.settings == (2.0, 4.0, 8.0)
        assert fit.metrics[0] == 98.0  # duplicates keep their best metric
        assert fit.selected == 2

    def test_guarantee_holds_by_construction(self):
        fit = fit_knee([1, 2, 3], [10.0, 9.6, 10.1], tolerance=0.05)
        assert fit.selected_metric >= 0.95 * fit.best_metric

    def test_validation(self):
        with pytest.raises(ValueError, match="one metric per setting"):
            fit_knee([1, 2], [1.0])
        with pytest.raises(ValueError, match="at least one"):
            fit_knee([], [])
        with pytest.raises(ValueError, match="tolerance"):
            fit_knee([1], [1.0], tolerance=1.0)


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------


class TestHostProfile:
    def test_save_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "prof.json")
        profile = HostProfile(
            span_budget=4096,
            tile_spans=32768,
            cache_max_bytes=1 << 20,
            batch_budget=16,
            batch_deadline_s=0.002,
            host=host_fingerprint(),
            source="test",
        )
        assert save_host_profile(profile, path) == path
        loaded = load_host_profile(path)
        assert loaded is not None
        assert loaded.knobs() == profile.knobs()
        assert loaded.host == profile.host

    def test_missing_file_is_none(self, tmp_path):
        assert load_host_profile(str(tmp_path / "absent.json")) is None

    def test_corrupt_file_warns_and_degrades(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="unreadable tuning profile"):
            assert load_host_profile(str(path)) is None
        # The memo caches the verdict: no second warning for the same file.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_host_profile(str(path)) is None

    def test_wrong_root_type_degrades(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.warns(RuntimeWarning, match="unreadable tuning profile"):
            assert load_host_profile(str(path)) is None

    def test_invalid_knob_dropped_rest_apply(self, tmp_path):
        path = _write_profile(
            tmp_path / "p.json",
            {
                "span_budget": "lots",  # wrong type: dropped
                "batch_budget": 0,  # below minimum: dropped
                "tile_spans": True,  # bool is not a knob value: dropped
                "cache_max_bytes": 1 << 20,  # valid: applies
                "batch_deadline_s": 0.001,  # valid: applies
            },
        )
        with pytest.warns(RuntimeWarning, match="dropping invalid knob"):
            profile = load_host_profile(path)
        assert profile is not None
        assert profile.span_budget is None
        assert profile.batch_budget is None
        assert profile.tile_spans is None
        assert profile.cache_max_bytes == 1 << 20
        assert profile.batch_deadline_s == 0.001

    def test_unknown_knobs_ignored(self, tmp_path):
        path = _write_profile(
            tmp_path / "p.json", {"span_budget": 2048, "future_knob": 7}
        )
        profile = load_host_profile(path)
        assert profile is not None and profile.span_budget == 2048

    def test_env_disables(self, monkeypatch, tmp_path):
        path = _write_profile(tmp_path / "p.json", {"span_budget": 2048})
        for sentinel in ("off", "none", "0", "  "):
            monkeypatch.setenv(PROFILE_ENV, sentinel)
            assert load_host_profile() is None
            assert profile_value("span_budget") is None
        monkeypatch.setenv(PROFILE_ENV, path)
        assert profile_value("span_budget") == 2048

    def test_profile_value_unknown_knob_raises(self):
        with pytest.raises(KeyError, match="unknown tuning knob"):
            profile_value("warp_factor")

    def test_profile_source(self, monkeypatch, tmp_path):
        monkeypatch.setenv(PROFILE_ENV, "off")
        assert profile_source() == "off"
        absent = str(tmp_path / "absent.json")
        monkeypatch.setenv(PROFILE_ENV, absent)
        assert profile_source() == "none"
        path = _write_profile(tmp_path / "p.json", {"span_budget": 2048})
        monkeypatch.setenv(PROFILE_ENV, path)
        assert profile_source() == path

    def test_edit_invalidates_memo_via_stat(self, tmp_path):
        path = _write_profile(tmp_path / "p.json", {"span_budget": 1024})
        assert load_host_profile(path).span_budget == 1024
        os.utime(path, ns=(1, 1))  # force a distinct mtime signature
        _write_profile(tmp_path / "p.json", {"span_budget": 2048})
        assert load_host_profile(path).span_budget == 2048


# ----------------------------------------------------------------------
# Precedence: explicit > env > profile > default, for every consumer
# ----------------------------------------------------------------------


class TestPrecedence:
    @pytest.fixture()
    def profile_path(self, monkeypatch, tmp_path):
        path = _write_profile(
            tmp_path / "prof.json",
            {
                "span_budget": 3333,
                "tile_spans": 4444,
                "cache_max_bytes": 5 << 20,
                "batch_budget": 6,
                "batch_deadline_s": 0.007,
            },
        )
        monkeypatch.setenv(PROFILE_ENV, path)
        return path

    @pytest.mark.parametrize(
        "resolve,env,explicit,from_profile,default",
        [
            (span_chunk_budget, SPAN_BUDGET_ENV, 1111, 3333,
             DEFAULT_SPAN_CHUNK_BUDGET),
            (resolved_batch_budget, BATCH_BUDGET_ENV, 11, 6,
             DEFAULT_BATCH_BUDGET),
            (resolved_cache_bytes, FRAME_CACHE_BYTES_ENV, 7 << 20, 5 << 20,
             DEFAULT_FRAME_CACHE_BYTES),
        ],
        ids=["span_budget", "batch_budget", "cache_bytes"],
    )
    def test_chain(
        self, monkeypatch, profile_path, resolve, env, explicit, from_profile,
        default,
    ):
        # profile beats default
        assert resolve() == from_profile
        # env beats profile
        monkeypatch.setenv(env, "2222")
        assert resolve() == 2222
        # explicit beats env
        assert resolve(explicit) == explicit
        # no profile, no env -> default
        monkeypatch.delenv(env)
        monkeypatch.setenv(PROFILE_ENV, "off")
        assert resolve() == default

    def test_tile_budget_chain(self, monkeypatch, profile_path):
        assert tile_span_budget() == 4444
        monkeypatch.setenv(TILE_BUDGET_ENV, "2222")
        assert tile_span_budget() == 2222
        assert tile_span_budget(9999) == 9999
        monkeypatch.delenv(TILE_BUDGET_ENV)
        monkeypatch.setenv(PROFILE_ENV, "off")
        # fallback: model prediction where detectable, else the default
        from repro.splat.backends.packed import _predicted_tile_spans

        assert tile_span_budget() == (
            _predicted_tile_spans() or DEFAULT_TILE_SPAN_BUDGET
        )

    def test_batch_deadline_chain(self, monkeypatch, profile_path):
        assert resolved_batch_deadline() == 0.007
        monkeypatch.setenv(BATCH_DEADLINE_ENV, "0.05")
        assert resolved_batch_deadline() == 0.05
        assert resolved_batch_deadline(0.1) == 0.1
        monkeypatch.delenv(BATCH_DEADLINE_ENV)
        monkeypatch.setenv(PROFILE_ENV, "off")
        assert resolved_batch_deadline() == 0.0

    def test_serve_config_resolves_at_construction(
        self, monkeypatch, profile_path
    ):
        config = ServeConfig()
        assert config.batch_budget == 6
        assert config.batch_deadline_s == 0.007
        assert config.cache_max_bytes == 5 << 20
        # explicit args still win, and sentinel resolution leaves no "auto"
        explicit = ServeConfig(
            batch_budget=2, batch_deadline_s=0.0, cache_max_bytes=None
        )
        assert explicit.batch_budget == 2
        assert explicit.batch_deadline_s == 0.0
        assert explicit.cache_max_bytes is None

    def test_corrupt_profile_falls_back_with_warning(
        self, monkeypatch, tmp_path
    ):
        path = tmp_path / "bad.json"
        path.write_text("}{")
        monkeypatch.setenv(PROFILE_ENV, str(path))
        invalidate_profile_cache()
        with pytest.warns(RuntimeWarning, match="unreadable tuning profile"):
            assert span_chunk_budget() == DEFAULT_SPAN_CHUNK_BUDGET
        assert resolved_batch_budget() == DEFAULT_BATCH_BUDGET
        assert resolved_cache_bytes() == DEFAULT_FRAME_CACHE_BYTES

    def test_partial_profile_fills_from_defaults(self, monkeypatch, tmp_path):
        path = _write_profile(tmp_path / "p.json", {"batch_budget": 12})
        monkeypatch.setenv(PROFILE_ENV, path)
        assert resolved_batch_budget() == 12
        assert span_chunk_budget() == DEFAULT_SPAN_CHUNK_BUDGET
        assert resolved_cache_bytes() == DEFAULT_FRAME_CACHE_BYTES

    def test_malformed_env_falls_back_to_profile(
        self, monkeypatch, profile_path
    ):
        # The env warning must name the value actually used next in the
        # chain — the profile's, not the built-in default.
        monkeypatch.setenv(SPAN_BUDGET_ENV, "banana")
        with pytest.warns(RuntimeWarning, match="3333"):
            assert span_chunk_budget() == 3333

    def test_explicit_validation_still_raises(self):
        with pytest.raises(ValueError):
            span_chunk_budget(0)
        with pytest.raises(ValueError):
            resolved_batch_budget(0)
        with pytest.raises(ValueError):
            resolved_batch_deadline(-1.0)
        with pytest.raises(ValueError, match="sentinel"):
            ServeConfig(cache_max_bytes="lots")


class TestFrameCacheResolution:
    def test_env_disables_cache(self, monkeypatch):
        monkeypatch.setenv(FRAME_CACHE_BYTES_ENV, "0")
        assert resolved_cache_bytes() is None
        assert ServeConfig().cache_max_bytes is None
        with pytest.raises(ValueError, match="disabled"):
            FrameCache()

    def test_env_sets_budget(self, monkeypatch):
        monkeypatch.setenv(FRAME_CACHE_BYTES_ENV, str(2 << 20))
        assert FrameCache().max_bytes == 2 << 20

    def test_explicit_still_validated(self):
        with pytest.raises(ValueError, match="positive"):
            FrameCache(max_bytes=-1)


# ----------------------------------------------------------------------
# Env-knob hardening (the harmonized parsers)
# ----------------------------------------------------------------------


class TestEnvKnobHarmonization:
    def test_default_shards_warns_and_falls_back(self, monkeypatch):
        from repro.serve.sharding import SHARDS_ENV, default_shards

        monkeypatch.setenv(SHARDS_ENV, "many")
        with pytest.warns(RuntimeWarning, match="non-integer"):
            assert default_shards() == 1
        monkeypatch.setenv(SHARDS_ENV, "0")
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert default_shards() == 1
        monkeypatch.setenv(SHARDS_ENV, "3")
        assert default_shards() == 3

    def test_default_workers_warns_and_falls_back(self, monkeypatch):
        from repro.serve.workers import WORKERS_ENV, default_workers

        monkeypatch.setenv(WORKERS_ENV, "nope")
        with pytest.warns(RuntimeWarning, match="non-integer"):
            assert default_workers() == 0
        monkeypatch.setenv(WORKERS_ENV, "-2")
        with pytest.warns(RuntimeWarning, match="out-of-range"):
            assert default_workers() == 0
        monkeypatch.setenv(WORKERS_ENV, "2")
        assert default_workers() == 2

    def test_env_float_nan_rejected(self, monkeypatch):
        from repro.envknobs import env_float

        monkeypatch.setenv("REPRO_TEST_KNOB", "nan")
        with pytest.warns(RuntimeWarning, match="out-of-range"):
            assert env_float("REPRO_TEST_KNOB", 1.5, minimum=0.0) == 1.5

    def test_env_int_blank_is_silent_fallback(self, monkeypatch):
        from repro.envknobs import env_int

        monkeypatch.setenv("REPRO_TEST_KNOB", "   ")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_int("REPRO_TEST_KNOB", 7) == 7


# ----------------------------------------------------------------------
# Sweep plumbing (fast paths only; the real sweeps run in bench_tune)
# ----------------------------------------------------------------------


class TestSweepPlumbing:
    def test_env_context_restores(self):
        from repro.tune.sweep import _env

        os.environ.pop("REPRO_TEST_KNOB", None)
        with _env("REPRO_TEST_KNOB", 42):
            assert os.environ["REPRO_TEST_KNOB"] == "42"
        assert "REPRO_TEST_KNOB" not in os.environ
        os.environ["REPRO_TEST_KNOB"] = "old"
        try:
            with _env("REPRO_TEST_KNOB", 1):
                assert os.environ["REPRO_TEST_KNOB"] == "1"
            assert os.environ["REPRO_TEST_KNOB"] == "old"
        finally:
            del os.environ["REPRO_TEST_KNOB"]

    def test_sweep_result_reporting(self):
        from repro.tune.sweep import SweepResult

        result = SweepResult(
            knob="span_budget",
            unit="views/s",
            settings=(1024.0, 4096.0),
            metrics=(10.0, 11.0),
            fit=fit_knee([1024, 4096], [10.0, 11.0]),
            predicted=2048,
        )
        text = "\n".join(result.lines())
        assert "span_budget" in text and "<- selected" in text
        assert result.prediction_gap == 2048 / result.fit.selected

    def test_autotune_quick_smoke(self, monkeypatch, tmp_path):
        # Render-side knobs only: the serve sweeps are covered by the CLI
        # tune leg and bench_tune; this pins the report/profile plumbing.
        from repro.tune.sweep import autotune

        path = str(tmp_path / "prof.json")
        monkeypatch.setenv(PROFILE_ENV, "off")
        report = autotune(
            quick=True, seed=0, path=path, include_serve=False
        )
        assert report.path == path
        assert report.profile.span_budget >= 1
        assert report.profile.tile_spans >= 1
        assert report.profile.batch_budget is None  # serve sweeps skipped
        assert "span_budget" in "\n".join(report.lines())
        loaded = load_host_profile(path)
        assert loaded is not None
        assert loaded.span_budget == report.profile.span_budget
        assert loaded.meta["sweeps"]["span_budget"]["settings"]
