"""Tiling stage: grid geometry and tile–splat assignment."""

import numpy as np
import pytest

from repro.splat.projection import project_gaussians
from repro.splat.tiling import TileGrid, assign_tiles


class TestTileGrid:
    def test_counts_round_up(self):
        grid = TileGrid(width=100, height=50, tile_size=16)
        assert grid.tiles_x == 7
        assert grid.tiles_y == 4
        assert grid.num_tiles == 28

    def test_tile_id_coords_round_trip(self):
        grid = TileGrid(width=128, height=96, tile_size=16)
        for tid in range(grid.num_tiles):
            tx, ty = grid.tile_coords(tid)
            assert grid.tile_id(tx, ty) == tid

    def test_pixel_bounds_clipped_to_image(self):
        grid = TileGrid(width=100, height=50, tile_size=16)
        x0, y0, x1, y1 = grid.tile_pixel_bounds(grid.num_tiles - 1)
        assert x1 <= 100 and y1 <= 50
        assert x0 < x1 and y0 < y1

    def test_bounds_tile_the_image_exactly(self):
        grid = TileGrid(width=70, height=40, tile_size=16)
        covered = np.zeros((40, 70), dtype=int)
        for tid in range(grid.num_tiles):
            x0, y0, x1, y1 = grid.tile_pixel_bounds(tid)
            covered[y0:y1, x0:x1] += 1
        assert np.all(covered == 1)

    def test_centers_inside_image(self):
        grid = TileGrid(width=70, height=40, tile_size=16)
        centers = grid.tile_centers()
        assert np.all(centers[:, 0] < 70)
        assert np.all(centers[:, 1] < 40)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            TileGrid(width=10, height=10, tile_size=0)
        with pytest.raises(ValueError):
            TileGrid(width=0, height=10, tile_size=16)


class TestAssignment:
    @pytest.fixture()
    def assigned(self, small_scene, train_cameras):
        camera = train_cameras[0]
        projected = project_gaussians(small_scene, camera)
        grid = TileGrid(width=camera.width, height=camera.height)
        return projected, assign_tiles(projected, grid)

    def test_offsets_are_csr(self, assigned):
        _, assignment = assigned
        offsets = assignment.tile_offsets
        assert offsets[0] == 0
        assert offsets[-1] == assignment.num_intersections
        assert np.all(np.diff(offsets) >= 0)

    def test_pairs_sorted_by_tile(self, assigned):
        _, assignment = assigned
        assert np.all(np.diff(assignment.pair_tiles) >= 0)

    def test_matches_bbox_brute_force(self, assigned):
        projected, assignment = assigned
        grid = assignment.grid
        ts = grid.tile_size
        # Recompute the expected pair count splat by splat.
        expected = 0
        for i in range(projected.num_visible):
            x, y = projected.means2d[i]
            r = projected.radii[i]
            tx0 = int(np.clip(np.floor((x - r) / ts), 0, grid.tiles_x - 1))
            tx1 = int(np.clip(np.floor((x + r) / ts), 0, grid.tiles_x - 1))
            ty0 = int(np.clip(np.floor((y - r) / ts), 0, grid.tiles_y - 1))
            ty1 = int(np.clip(np.floor((y + r) / ts), 0, grid.tiles_y - 1))
            expected += (tx1 - tx0 + 1) * (ty1 - ty0 + 1)
        assert assignment.num_intersections == expected

    def test_splats_in_tile_consistent(self, assigned):
        _, assignment = assigned
        total = sum(
            assignment.splats_in_tile(t).size for t in range(assignment.grid.num_tiles)
        )
        assert total == assignment.num_intersections

    def test_intersections_per_tile_sums(self, assigned):
        _, assignment = assigned
        per_tile = assignment.intersections_per_tile()
        assert per_tile.shape == (assignment.grid.num_tiles,)
        assert per_tile.sum() == assignment.num_intersections

    def test_tiles_per_splat_total(self, assigned):
        projected, assignment = assigned
        per_splat = assignment.tiles_per_splat(projected.num_visible)
        assert per_splat.sum() == assignment.num_intersections

    def test_empty_projection(self, front_camera, small_scene):
        model = small_scene.copy()
        model.positions[:, 2] = -1000.0  # everything behind the camera
        projected = project_gaussians(model, front_camera)
        grid = TileGrid(width=front_camera.width, height=front_camera.height)
        assignment = assign_tiles(projected, grid)
        assert assignment.num_intersections == 0
        assert np.all(assignment.intersections_per_tile() == 0)

    def test_big_splat_touches_many_tiles(self, front_camera):
        from repro.splat.gaussians import GaussianModel

        model = GaussianModel(
            positions=np.array([[0.0, 0.0, 0.0]]),
            log_scales=np.log(np.full((1, 3), 2.0)),
            rotations=np.array([[1.0, 0, 0, 0]]),
            opacity_logits=np.array([3.0]),
            sh=np.zeros((1, 1, 3)),
        )
        projected = project_gaussians(model, front_camera)
        grid = TileGrid(width=front_camera.width, height=front_camera.height)
        assignment = assign_tiles(projected, grid)
        assert assignment.num_intersections > 1
