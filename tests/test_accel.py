"""Accelerator: pipeline simulation, configs, area, energy, speedups."""

import dataclasses

import numpy as np
import pytest

from repro.accel import (
    GSCORE,
    METASAPIENS_BASE,
    METASAPIENS_TM,
    METASAPIENS_TM_IP,
    AcceleratorConfig,
    accelerator_energy,
    area_mm2,
    energy_reduction,
    geomean_speedup,
    reference_areas,
    run_accelerator,
    simulate_pipeline,
    stage_cycles,
)
from repro.perf import workload_from_render


@pytest.fixture(scope="module")
def frame(rendered):
    ints = rendered.stats.intersections_per_tile
    workload = workload_from_render(rendered)
    return ints, workload


class TestConfigs:
    def test_presets_distinct(self):
        assert not METASAPIENS_BASE.tile_merge
        assert METASAPIENS_TM.tile_merge and not METASAPIENS_TM.incremental_pipelining
        assert METASAPIENS_TM_IP.tile_merge and METASAPIENS_TM_IP.incremental_pipelining

    def test_gscore_resource_ratios(self):
        """Sec 7.5: ours has 4x the VRCs and half the sorting units."""
        assert METASAPIENS_BASE.num_vrc == 4 * GSCORE.num_vrc
        assert GSCORE.num_sort_units == 2 * METASAPIENS_BASE.num_sort_units

    def test_scaling_preserves_structure(self):
        scaled = METASAPIENS_TM_IP.scaled(2.0)
        assert scaled.num_vrc == pytest.approx(2 * METASAPIENS_TM_IP.num_vrc, rel=0.1)
        assert scaled.tile_merge and scaled.incremental_pipelining

    def test_scaling_never_drops_below_one(self):
        scaled = GSCORE.scaled(0.01)
        assert scaled.num_sort_units >= 1
        assert scaled.num_ccu >= 1

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            METASAPIENS_BASE.scaled(0.0)


class TestStageCycles:
    def test_raster_linear_in_intersections(self):
        proj, sort, raster = stage_cycles(
            np.array([100.0, 200.0]), np.array([1, 1]), METASAPIENS_BASE
        )
        assert raster[1] == pytest.approx(2 * raster[0] - 1, rel=0.02)

    def test_sort_superlinear(self):
        _, sort, _ = stage_cycles(
            np.array([64.0, 256.0]), np.array([1, 1]), METASAPIENS_BASE
        )
        assert sort[1] > 4 * sort[0]

    def test_fewer_vrcs_slower_raster(self):
        _, _, ours = stage_cycles(np.array([128.0]), np.array([1]), METASAPIENS_BASE)
        _, _, gscore = stage_cycles(np.array([128.0]), np.array([1]), GSCORE)
        assert gscore[0] > ours[0]


class TestPipelineSim:
    def test_empty_frame(self):
        result = simulate_pipeline(np.zeros(10), METASAPIENS_BASE)
        assert result.total_cycles == 0.0

    def test_makespan_at_least_busy_time(self, frame):
        ints, _ = frame
        result = simulate_pipeline(ints, METASAPIENS_BASE)
        assert result.total_cycles >= result.raster_busy_cycles
        assert 0.0 < result.raster_utilization <= 1.0

    def test_tile_merge_reduces_cycles_on_imbalanced_load(self):
        rng = np.random.default_rng(0)
        ints = rng.exponential(scale=50.0, size=300)
        base = simulate_pipeline(ints, METASAPIENS_BASE)
        merged = simulate_pipeline(ints, METASAPIENS_TM)
        assert merged.total_cycles <= base.total_cycles

    def test_incremental_pipelining_improves_further(self):
        rng = np.random.default_rng(1)
        ints = rng.exponential(scale=50.0, size=300)
        tm = simulate_pipeline(ints, METASAPIENS_TM)
        tm_ip = simulate_pipeline(ints, METASAPIENS_TM_IP)
        assert tm_ip.total_cycles < tm.total_cycles
        assert tm_ip.raster_utilization >= tm.raster_utilization

    def test_balanced_load_needs_no_help(self):
        ints = np.full(100, 64.0)
        base = simulate_pipeline(ints, METASAPIENS_BASE)
        tm = simulate_pipeline(ints, METASAPIENS_TM)
        # On perfectly balanced work the gain must be modest.
        assert tm.total_cycles > 0.8 * base.total_cycles

    def test_imbalance_hurts_utilization(self):
        """Fig 9/10: imbalanced per-tile work stalls the baseline pipe."""
        rng = np.random.default_rng(2)
        balanced = np.full(200, 50.0)
        imbalanced = rng.exponential(scale=50.0, size=200)
        u_bal = simulate_pipeline(balanced, METASAPIENS_BASE).raster_utilization
        u_imb = simulate_pipeline(imbalanced, METASAPIENS_BASE).raster_utilization
        assert u_imb < u_bal


class TestAcceleratorRuns:
    def test_speedup_over_gpu(self, frame):
        ints, workload = frame
        run = run_accelerator(ints, workload, METASAPIENS_BASE)
        assert run.speedup > 5.0  # an ASIC must beat the mobile GPU

    def test_tm_ip_fastest(self, frame):
        ints, workload = frame
        runs = {
            cfg.name: run_accelerator(ints, workload, cfg)
            for cfg in (METASAPIENS_BASE, METASAPIENS_TM, METASAPIENS_TM_IP)
        }
        assert runs["MetaSapiens-TM-IP"].speedup >= runs["MetaSapiens-Base"].speedup

    def test_gscore_slower_than_ours(self, frame):
        ints, workload = frame
        ours = run_accelerator(ints, workload, METASAPIENS_TM_IP)
        gscore = run_accelerator(ints, workload, GSCORE)
        assert ours.speedup > gscore.speedup

    def test_geomean(self, frame):
        ints, workload = frame
        run = run_accelerator(ints, workload, METASAPIENS_BASE)
        assert geomean_speedup([run, run]) == pytest.approx(run.speedup)
        with pytest.raises(ValueError):
            geomean_speedup([])


class TestArea:
    def test_reference_areas_match_paper(self):
        areas = reference_areas()
        assert areas["MetaSapiens"] == pytest.approx(2.73, rel=0.15)
        assert areas["GSCore"] == pytest.approx(1.45, rel=0.25)

    def test_ours_larger_than_gscore(self):
        areas = reference_areas()
        assert areas["MetaSapiens"] > areas["GSCore"]

    def test_area_grows_with_scale(self):
        assert area_mm2(METASAPIENS_TM_IP.scaled(2.0)) > area_mm2(METASAPIENS_TM_IP)

    def test_line_buffers_cheaper_than_double_buffers(self):
        ip = METASAPIENS_TM_IP
        no_ip = dataclasses.replace(ip, incremental_pipelining=False)
        from repro.accel import sram_kb

        assert sram_kb(ip) < sram_kb(no_ip)


class TestEnergy:
    def test_breakdown_positive(self, frame):
        _, workload = frame
        energy = accelerator_energy(workload, METASAPIENS_BASE)
        assert energy.compute_mj > 0
        assert energy.sram_mj > 0
        assert energy.dram_mj > 0
        assert energy.total_mj == pytest.approx(
            energy.compute_mj + energy.sram_mj + energy.dram_mj
        )

    def test_reduction_in_paper_band(self, frame):
        """Sec 7.3: ~54x (base) and ~57x (TM+IP) energy reduction vs GPU."""
        _, workload = frame
        base = energy_reduction(workload, METASAPIENS_BASE)
        tm_ip = energy_reduction(workload, METASAPIENS_TM_IP)
        assert 25.0 < base < 120.0
        assert tm_ip > base  # line buffers save SRAM energy

    def test_ip_saves_sram_energy(self, frame):
        _, workload = frame
        e_base = accelerator_energy(workload, METASAPIENS_BASE)
        e_ip = accelerator_energy(workload, METASAPIENS_TM_IP)
        assert e_ip.sram_mj < e_base.sram_mj
        assert e_ip.compute_mj == pytest.approx(e_base.compute_mj)


class TestSpansToTileCounts:
    """The span → accelerator-workload adapter (real per-row fragment counts)."""

    @pytest.fixture(scope="class")
    def spans(self):
        from repro.splat import prepare_view, random_model
        from repro.splat.backends import build_row_spans, build_segments
        from repro.splat import Camera

        model = random_model(300, np.random.default_rng(3), extent=2.0)
        cam = Camera.from_fov(
            width=96, height=64, fov_x_deg=60.0,
            position=np.array([0.0, 0.0, -4.0]), look_at=np.zeros(3),
        )
        projected, assignment = prepare_view(model, cam)
        spans = build_row_spans(projected, build_segments(assignment))
        assert spans.num_spans > 0
        return assignment, spans

    def test_span_units_total(self, spans):
        from repro.accel import spans_to_tile_counts

        assignment, sp = spans
        counts = spans_to_tile_counts(sp, units="spans")
        assert counts.shape == (assignment.grid.num_tiles,)
        assert counts.sum() == sp.num_spans
        # Tiles without any span carry zero work.
        assert np.all(counts[np.setdiff1d(
            np.arange(assignment.grid.num_tiles), np.unique(sp.span_tile)
        )] == 0)

    def test_intersection_units_bounded_by_synthetic(self, spans):
        from repro.accel import spans_to_tile_counts

        assignment, sp = spans
        real = spans_to_tile_counts(sp, units="intersections")
        synthetic = assignment.intersections_per_tile().astype(np.float64)
        # Real rasterized area never exceeds charging every intersection a
        # full tile, per tile and in total.
        assert np.all(real <= synthetic + 1e-12)
        assert 0.0 < real.sum() <= synthetic.sum()

    def test_unknown_units_rejected(self, spans):
        from repro.accel import spans_to_tile_counts

        _, sp = spans
        with pytest.raises(ValueError, match="unknown units"):
            spans_to_tile_counts(sp, units="flops")

    def test_drives_pipeline_sim(self, spans):
        from repro.accel import METASAPIENS_TM_IP, simulate_pipeline, spans_to_tile_counts

        _, sp = spans
        result = simulate_pipeline(
            spans_to_tile_counts(sp, units="intersections"), METASAPIENS_TM_IP
        )
        assert result.total_cycles > 0
        assert result.num_scheduled_tiles > 0


class TestSpanDrivenSorting:
    """The sorting stage priced from span group lengths (real fragment lists)."""

    @pytest.fixture(scope="class")
    def spans(self):
        from repro.splat import Camera, prepare_view, random_model
        from repro.splat.backends import build_row_spans, build_segments

        model = random_model(300, np.random.default_rng(3), extent=2.0)
        cam = Camera.from_fov(
            width=96, height=64, fov_x_deg=60.0,
            position=np.array([0.0, 0.0, -4.0]), look_at=np.zeros(3),
        )
        projected, assignment = prepare_view(model, cam)
        return build_row_spans(projected, build_segments(assignment))

    def test_sort_work_matches_naive_group_loop(self, spans):
        from repro.accel import spans_to_sort_work

        work = spans_to_sort_work(spans)
        naive = np.zeros(spans.seg.grid.num_tiles)
        for tile, length in zip(spans.group_tile, spans.groups.lens):
            n = float(length)
            naive[tile] += n * np.ceil(np.log2(max(n, 2.0)))
        assert np.allclose(work, naive)
        assert work.sum() > 0

    def test_stage_cycles_sort_override(self):
        work = np.array([64.0, 640.0])
        counts = np.array([100.0, 200.0])
        _, sort_default, raster_default = stage_cycles(
            counts, np.array([1, 1]), METASAPIENS_BASE
        )
        proj, sort, raster = stage_cycles(
            counts, np.array([1, 1]), METASAPIENS_BASE, sort_work=work
        )
        # Only sorting is repriced; its cycles follow the supplied workload.
        assert np.array_equal(raster, raster_default)
        assert sort[1] == pytest.approx(10 * sort[0])
        assert not np.array_equal(sort, sort_default)

    def test_simulate_pipeline_sort_work(self, spans):
        from repro.accel import spans_to_sort_work, spans_to_tile_counts

        ints = spans_to_tile_counts(spans, units="intersections")
        work = spans_to_sort_work(spans)
        default = simulate_pipeline(ints, METASAPIENS_TM_IP)
        driven = simulate_pipeline(
            ints, METASAPIENS_TM_IP, sort_work_per_tile=work
        )
        assert driven.total_cycles > 0
        assert driven.raster_busy_cycles == default.raster_busy_cycles
        assert driven.sort_busy_cycles != default.sort_busy_cycles

    def test_sort_work_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="align"):
            simulate_pipeline(
                np.ones(4), METASAPIENS_BASE, sort_work_per_tile=np.ones(3)
            )

    def test_run_accelerator_passthrough(self, spans, frame):
        from repro.accel import spans_to_sort_work, spans_to_tile_counts

        _, workload = frame
        ints = spans_to_tile_counts(spans, units="intersections")
        run = run_accelerator(
            ints, workload, METASAPIENS_TM_IP,
            sort_work_per_tile=spans_to_sort_work(spans),
        )
        assert run.speedup > 0
        assert run.pipeline.sort_busy_cycles > 0


class TestFoveatedSpanWorkloads:
    """Per-level filtered spans from the real foveated frame drive the sim."""

    @pytest.fixture(scope="class")
    def fr_result(self):
        from repro.foveation import render_foveated, uniform_foveated_model
        from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
        from repro.scenes import generate_scene, trace_cameras
        from repro.splat import RenderConfig

        scene = generate_scene("kitchen", n_points=250)
        train, _ = trace_cameras("kitchen", n_train=1, n_eval=1, width=96, height=64)
        fmodel = uniform_foveated_model(
            scene, EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS
        )
        return render_foveated(
            fmodel, train[0], config=RenderConfig(backend="packed")
        )

    def test_level_partition_and_bounds(self, fr_result):
        from repro.accel import foveated_tile_counts

        counts = foveated_tile_counts(fr_result.level_spans)
        # Levels partition the tile grid: each tile's spans come from its
        # own level only, and the filtered workload never exceeds charging
        # every surviving intersection a full tile.
        per_level = {
            t: np.flatnonzero(
                np.bincount(
                    sp.span_tile, minlength=fr_result.maps.tile_level.shape[0]
                )
            )
            for t, sp in fr_result.level_spans.items()
        }
        for t, tiles in per_level.items():
            assert np.all(fr_result.maps.tile_level[tiles] == t)
        assert 0 < counts.sum() <= (
            fr_result.stats.raster_intersections_per_tile.sum() + 1e-9
        )

    def test_drives_pipeline_sim(self, fr_result):
        from repro.accel import foveated_sort_work, foveated_tile_counts

        result = simulate_pipeline(
            foveated_tile_counts(fr_result.level_spans),
            METASAPIENS_TM_IP,
            sort_work_per_tile=foveated_sort_work(fr_result.level_spans),
        )
        assert result.total_cycles > 0

    def test_empty_level_spans_rejected(self):
        from repro.accel import foveated_sort_work, foveated_tile_counts

        with pytest.raises(ValueError, match="level_spans"):
            foveated_tile_counts({})
        with pytest.raises(ValueError, match="level_spans"):
            foveated_sort_work({})
