"""Gaze dynamics: scanpath structure and its effect on FR workload."""

import numpy as np
import pytest

from repro.scenes import GazeModel, gaze_trajectory, saccade_frames


class TestTrajectory:
    def test_shape_and_bounds(self):
        gaze = gaze_trajectory(128, 96, 300, seed=0)
        assert gaze.shape == (300, 2)
        assert np.all(gaze[:, 0] >= 0) and np.all(gaze[:, 0] <= 127)
        assert np.all(gaze[:, 1] >= 0) and np.all(gaze[:, 1] <= 95)

    def test_deterministic(self):
        a = gaze_trajectory(128, 96, 100, seed=4)
        b = gaze_trajectory(128, 96, 100, seed=4)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        a = gaze_trajectory(128, 96, 100, seed=1)
        b = gaze_trajectory(128, 96, 100, seed=2)
        assert not np.array_equal(a, b)

    def test_contains_fixations_and_saccades(self):
        gaze = gaze_trajectory(128, 96, 900, fps=90.0, seed=0)
        steps = np.linalg.norm(np.diff(gaze, axis=0), axis=1)
        # Most frames drift slowly; some frames jump far.
        assert np.median(steps) < 2.0
        assert steps.max() > 10.0

    def test_fixation_duration_respected(self):
        model = GazeModel(fixation_mean_s=1.0, fixation_min_s=0.8)
        gaze = gaze_trajectory(128, 96, 450, fps=90.0, model=model, seed=0)
        sacc = saccade_frames(gaze)
        # Long fixations → few saccade frames.
        assert sacc.mean() < 0.2

    def test_single_frame(self):
        gaze = gaze_trajectory(64, 48, 1)
        assert gaze.shape == (1, 2)


class TestSaccadeDetection:
    def test_static_gaze_no_saccades(self):
        gaze = np.tile([32.0, 24.0], (50, 1))
        assert saccade_frames(gaze).sum() == 0

    def test_jump_detected(self):
        gaze = np.tile([32.0, 24.0], (10, 1))
        gaze[5] = [100.0, 80.0]
        sacc = saccade_frames(gaze, threshold_px=4.0)
        assert sacc[5]

    def test_short_input(self):
        assert saccade_frames(np.zeros((1, 2))).sum() == 0


class TestGazeDrivenWorkload:
    def test_workload_follows_gaze(self, small_scene, train_cameras):
        """Moving the gaze moves the heavy (foveal) tiles."""
        from repro.foveation import RegionLayout, make_smfr, render_foveated

        layout = RegionLayout(boundaries_deg=(0.0, 10.0, 18.0, 26.0))
        fm = make_smfr(small_scene, layout, level_fractions=(1.0, 0.4, 0.2, 0.1))
        cam = train_cameras[0]
        gaze_pts = gaze_trajectory(cam.width, cam.height, 60, seed=3)
        sacc = saccade_frames(gaze_pts)
        levels = []
        # Sample a few fixation frames far apart.
        frames = [5, 30, 55]
        for f in frames:
            result = render_foveated(fm, cam, gaze=tuple(gaze_pts[f]))
            levels.append(result.stats.tile_levels.copy())
        assert any(
            not np.array_equal(levels[i], levels[j])
            for i in range(len(frames))
            for j in range(i + 1, len(frames))
        ) or sacc.sum() == 0
