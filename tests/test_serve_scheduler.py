"""ServeLoop: micro-batching, caching, dedup, exactness, lifecycle."""

import asyncio
import time
import types

import numpy as np
import pytest

from repro.foveation import render_foveated, uniform_foveated_model
from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
from repro.scenes import trace_cameras
from repro.serve import (
    FrameRequest,
    GazeGridSpec,
    ServeConfig,
    ServeLoop,
    region_center,
    quantize_gaze,
)
from repro.serve.scheduler import _Pending, _TwoClassQueue
from repro.splat import random_model

WIDTH, HEIGHT = 64, 48


def make_pending(key, prefetch=False):
    return _Pending(
        request=None, key=key, future=None, t_submit=0.0, prefetch=prefetch
    )


@pytest.fixture(scope="module")
def fmodel():
    return uniform_foveated_model(
        random_model(80, np.random.default_rng(3)),
        EVAL_REGION_LAYOUT,
        EVAL_LEVEL_FRACTIONS,
    )


@pytest.fixture(scope="module")
def cameras():
    _, evals = trace_cameras(
        "kitchen", n_train=4, n_eval=4, width=WIDTH, height=HEIGHT
    )
    return evals


def run(coro):
    return asyncio.run(coro)


class TestLifecycle:
    def test_submit_requires_running_loop(self, fmodel, cameras):
        loop = ServeLoop(fmodel)

        async def bad():
            await loop.submit(FrameRequest(0, cameras[0]))

        with pytest.raises(RuntimeError, match="not running"):
            run(bad())

    def test_double_start_rejected(self, fmodel):
        async def bad():
            async with ServeLoop(fmodel) as loop:
                await loop.start()

        with pytest.raises(RuntimeError, match="already started"):
            run(bad())

    def test_close_drains_pending(self, fmodel, cameras):
        async def scenario():
            loop = ServeLoop(fmodel)
            await loop.start()
            tasks = [
                asyncio.create_task(
                    loop.submit(FrameRequest(i, cameras[i % 2], (10.0 * i, 8.0)))
                )
                for i in range(4)
            ]
            await asyncio.sleep(0)  # let submits enqueue, not resolve
            await loop.close()
            return await asyncio.gather(*tasks)

        responses = run(scenario())
        assert len(responses) == 4
        assert all(r.result.image.shape == (HEIGHT, WIDTH, 3) for r in responses)


class TestBatchingAndCaching:
    def test_miss_is_bit_identical_to_render_foveated(self, fmodel, cameras):
        gaze = (20.0, 15.0)

        async def scenario():
            async with ServeLoop(fmodel) as loop:
                return await loop.submit(FrameRequest(0, cameras[0], gaze))

        response = run(scenario())
        assert not response.cache_hit
        ref = render_foveated(fmodel, cameras[0], gaze=gaze)
        assert np.array_equal(ref.image, response.result.image)

    def test_concurrent_requests_coalesce(self, fmodel, cameras):
        async def scenario():
            async with ServeLoop(
                fmodel, serve_config=ServeConfig(batch_budget=8)
            ) as loop:
                spec = loop.serve_config.grid
                # Distinct gaze regions of one pose: no dedup, one batch.
                gazes = [
                    region_center(
                        cameras[0], spec, quantize_gaze(cameras[0], g, spec)
                    )
                    for g in [(5.0, 5.0), (60.0, 40.0), (32.0, 24.0)]
                ]
                responses = await asyncio.gather(
                    *(
                        loop.submit(FrameRequest(i, cameras[0], gaze))
                        for i, gaze in enumerate(gazes)
                    )
                )
                return loop.batch_sizes, responses

        batch_sizes, responses = run(scenario())
        rendered = {r.batch_size for r in responses if not r.cache_hit}
        assert len(set(quantize_gaze(cameras[0], r.request.gaze) for r in responses)) == 3
        assert batch_sizes == [3]
        assert rendered == {3}

    def test_budget_splits_batches(self, fmodel, cameras):
        async def scenario():
            async with ServeLoop(
                fmodel, serve_config=ServeConfig(batch_budget=2, cache_max_bytes=None)
            ) as loop:
                await asyncio.gather(
                    *(
                        loop.submit(
                            FrameRequest(i, cameras[i % len(cameras)], (float(i), 5.0))
                        )
                        for i in range(5)
                    )
                )
                return loop.batch_sizes

        batch_sizes = run(scenario())
        assert max(batch_sizes) <= 2
        assert sum(batch_sizes) == 5

    def test_same_region_request_hits_cache(self, fmodel, cameras):
        gaze = (20.0, 15.0)

        async def scenario():
            async with ServeLoop(fmodel) as loop:
                first = await loop.submit(FrameRequest(0, cameras[0], gaze))
                nearby = region_center(
                    cameras[0],
                    loop.serve_config.grid,
                    quantize_gaze(cameras[0], gaze, loop.serve_config.grid),
                )
                second = await loop.submit(FrameRequest(1, cameras[0], nearby))
                return loop, first, second

        loop, first, second = run(scenario())
        assert not first.cache_hit and second.cache_hit
        # The hit serves the frame rendered for the earlier gaze in the
        # same region — object-identical, zero render work.
        assert second.result is first.result
        assert loop.frame_cache.hits == 1 and loop.frame_cache.misses == 1

    def test_in_batch_duplicates_dedup_to_one_render(self, fmodel, cameras):
        async def scenario():
            async with ServeLoop(fmodel) as loop:
                responses = await asyncio.gather(
                    *(
                        loop.submit(FrameRequest(i, cameras[0], (20.0, 15.0)))
                        for i in range(4)
                    )
                )
                return loop, responses

        loop, responses = run(scenario())
        misses = [r for r in responses if not r.cache_hit]
        assert len(misses) == 1  # one render served all four clients
        assert loop.batch_sizes == [1]
        for r in responses:
            assert np.array_equal(r.result.image, misses[0].result.image)

    def test_throughput_mode_matches_within_tolerance(self, fmodel, cameras):
        # exact_frames=False rides a whole pose group on one concatenated
        # scan: not bit-exact (last-bit rounding moves with batch
        # composition) but within the backend-equivalence tolerance.
        async def scenario():
            async with ServeLoop(
                fmodel,
                serve_config=ServeConfig(exact_frames=False, cache_max_bytes=None),
            ) as loop:
                return await asyncio.gather(
                    *(
                        loop.submit(FrameRequest(i, cameras[0], gaze))
                        for i, gaze in enumerate(
                            [(5.0, 5.0), (60.0, 40.0), (32.0, 24.0)]
                        )
                    )
                )

        for response in run(scenario()):
            ref = render_foveated(
                fmodel, response.request.camera, gaze=response.request.gaze
            )
            assert np.abs(ref.image - response.result.image).max() < 1e-10

    def test_pose_change_misses(self, fmodel, cameras):
        async def scenario():
            async with ServeLoop(fmodel) as loop:
                a = await loop.submit(FrameRequest(0, cameras[0], (20.0, 15.0)))
                b = await loop.submit(FrameRequest(0, cameras[1], (20.0, 15.0)))
                return a, b

        a, b = run(scenario())
        assert not a.cache_hit and not b.cache_hit

    def test_model_mutation_invalidates(self, fmodel, cameras):
        # The acceptance-critical property: after the model changes, the
        # same request must re-render (fingerprint key) and match a fresh
        # per-request render of the mutated model bit for bit.
        base = uniform_foveated_model(
            random_model(60, np.random.default_rng(9)),
            EVAL_REGION_LAYOUT,
            EVAL_LEVEL_FRACTIONS,
        )
        gaze = (20.0, 15.0)

        async def scenario():
            async with ServeLoop(base) as loop:
                before = await loop.submit(FrameRequest(0, cameras[0], gaze))
                base.base.positions[:, 0] += 0.05
                base.mv_opacity_logits[:, 0] += 0.1
                after = await loop.submit(FrameRequest(0, cameras[0], gaze))
                return before, after

        before, after = run(scenario())
        assert not before.cache_hit and not after.cache_hit
        ref = render_foveated(base, cameras[0], gaze=gaze)
        assert np.array_equal(ref.image, after.result.image)
        assert not np.array_equal(before.result.image, after.result.image)

    def test_disabled_cache_always_renders(self, fmodel, cameras):
        async def scenario():
            async with ServeLoop(
                fmodel, serve_config=ServeConfig(cache_max_bytes=None)
            ) as loop:
                a = await loop.submit(FrameRequest(0, cameras[0], (20.0, 15.0)))
                b = await loop.submit(FrameRequest(0, cameras[0], (20.0, 15.0)))
                return loop, a, b

        loop, a, b = run(scenario())
        assert loop.frame_cache is None
        assert not a.cache_hit and not b.cache_hit
        assert np.array_equal(a.result.image, b.result.image)

    def test_latencies_and_served_recorded(self, fmodel, cameras):
        async def scenario():
            async with ServeLoop(fmodel) as loop:
                await loop.submit(FrameRequest(0, cameras[0], (20.0, 15.0)))
                await loop.submit(FrameRequest(1, cameras[0], (20.0, 15.0)))
                return loop

        loop = run(scenario())
        assert loop.requests_served == 2
        assert len(loop.latencies_s) == 2
        assert all(lat >= 0 for lat in loop.latencies_s)

    def test_deadline_waits_for_stragglers(self, fmodel, cameras):
        async def scenario():
            async with ServeLoop(
                fmodel,
                serve_config=ServeConfig(
                    batch_budget=2, batch_deadline_s=0.25, cache_max_bytes=None
                ),
            ) as loop:
                first = asyncio.create_task(
                    loop.submit(FrameRequest(0, cameras[0], (5.0, 5.0)))
                )
                await asyncio.sleep(0.02)  # batcher now holds request 0
                second = asyncio.create_task(
                    loop.submit(FrameRequest(1, cameras[0], (40.0, 30.0)))
                )
                await asyncio.gather(first, second)
                return loop.batch_sizes

        batch_sizes = run(scenario())
        # The straggler arrived within the deadline: one pose group of two.
        assert batch_sizes == [2]


class TestFailureIsolation:
    def test_render_failure_scoped_to_its_pose_group(
        self, fmodel, cameras, monkeypatch
    ):
        # Regression: a pose whose render raises must fail only its own
        # requests — other poses in the coalesced batch still render, and
        # cache hits (whose frames are already in hand) still resolve.
        import repro.serve.scheduler as scheduler_mod

        real = scheduler_mod.render_foveated_batch
        bad_camera = cameras[1]

        def failing(fmodel_arg, camera, **kwargs):
            if camera is bad_camera:
                raise RuntimeError("pose exploded")
            return real(fmodel_arg, camera, **kwargs)

        monkeypatch.setattr(scheduler_mod, "render_foveated_batch", failing)

        async def scenario():
            async with ServeLoop(fmodel) as loop:
                hit_seed = await loop.submit(
                    FrameRequest(0, cameras[0], (20.0, 15.0))
                )
                results = await asyncio.gather(
                    loop.submit(FrameRequest(1, cameras[0], (20.0, 15.0))),  # hit
                    loop.submit(FrameRequest(2, bad_camera, (20.0, 15.0))),
                    loop.submit(FrameRequest(3, cameras[2], (20.0, 15.0))),
                    return_exceptions=True,
                )
                return hit_seed, results

        hit_seed, (hit, failed, other) = run(scenario())
        assert not hit_seed.cache_hit
        assert hit.cache_hit and hit.result is hit_seed.result
        assert isinstance(failed, RuntimeError)
        assert other.result.image.shape == (HEIGHT, WIDTH, 3)


class TestTwoClassQueue:
    """The scheduler's urgent/prefetch queue: priority + cancellation safety."""

    def test_urgent_always_dequeues_before_prefetch(self):
        q = _TwoClassQueue()
        speculation = make_pending(("spec",), prefetch=True)
        real = make_pending(("real",))
        q.put_nowait(speculation)
        q.put_nowait(real)
        assert q.get_nowait() is real  # the real miss preempts the speculation
        assert q.get_nowait() is speculation
        with pytest.raises(asyncio.QueueEmpty):
            q.get_nowait()

    def test_join_waits_for_task_done(self):
        async def scenario():
            q = _TwoClassQueue()
            q.put_nowait(make_pending(("a",)))
            join = asyncio.ensure_future(q.join())
            await asyncio.sleep(0)
            assert not join.done()
            q.get_nowait()
            q.task_done()
            await asyncio.wait_for(join, timeout=1.0)

        run(scenario())

    def test_cancelled_getter_never_loses_the_item(self):
        # The race the old asyncio.wait_for(queue.get(), ...) pattern lost:
        # the item arrives, the getter is woken, and the cancellation lands
        # before the getter resumes.  The item must survive — either
        # recovered from the getter or still sitting in the queue.
        async def scenario():
            q = _TwoClassQueue()
            item = make_pending(("k",))
            getter = asyncio.ensure_future(q.get())
            await asyncio.sleep(0)  # getter is now parked on its waiter
            q.put_nowait(item)  # wakes the getter ...
            # ... and we cancel before it gets to run: the race window.
            recovered = await _TwoClassQueue.drain_getter(getter)
            if recovered is None:
                assert q.get_nowait() is item  # still queued, not dropped
            else:
                assert recovered is item

        run(scenario())

    def test_drain_getter_recovers_a_completed_get(self):
        async def scenario():
            q = _TwoClassQueue()
            item = make_pending(("k",))
            getter = asyncio.ensure_future(q.get())
            await asyncio.sleep(0)
            q.put_nowait(item)
            await asyncio.sleep(0)  # let the getter resume and pop the item
            assert getter.done()
            assert await _TwoClassQueue.drain_getter(getter) is item
            assert q.empty()

        run(scenario())

    def test_requeue_preserves_unfinished_count(self):
        async def scenario():
            q = _TwoClassQueue()
            item = make_pending(("k",))
            q.put_nowait(item)
            q.requeue(q.get_nowait())  # recovered item goes back, same count
            assert q.get_nowait() is item
            q.task_done()  # exactly one task_done balances the one put
            with pytest.raises(ValueError):
                q.task_done()

        run(scenario())


class TestCollectRaceSafety:
    def test_straggler_stress_never_loses_requests(
        self, fmodel, cameras, monkeypatch
    ):
        # Stress the straggler wait's timeout/arrival race: many jittered
        # clients against a short batch deadline.  With the lost-request
        # race a dropped _Pending leaves its future unresolved forever and
        # close() hangs on join() — the overall wait_for turns either
        # failure mode into a test failure instead of a deadlock.
        import repro.serve.scheduler as scheduler_mod

        def fake_render(fmodel_arg, camera, gazes=None, **kwargs):
            time.sleep(0.0005)
            return [types.SimpleNamespace(image=None) for _ in gazes]

        monkeypatch.setattr(scheduler_mod, "render_foveated_batch", fake_render)

        async def scenario():
            config = ServeConfig(
                batch_budget=4, batch_deadline_s=0.002, cache_max_bytes=None
            )
            async with ServeLoop(fmodel, serve_config=config) as loop:
                rng = np.random.default_rng(0)
                delays = rng.uniform(0.0, 0.05, size=80)

                async def client(i):
                    await asyncio.sleep(float(delays[i]))
                    return await loop.submit(
                        FrameRequest(i, cameras[i % 2], (float(i % 60), 10.0))
                    )

                responses = await asyncio.gather(
                    *(client(i) for i in range(80))
                )
                return loop, responses

        loop, responses = run(asyncio.wait_for(scenario(), timeout=30.0))
        assert len(responses) == 80
        assert loop.requests_served == 80


class TestLatencyAttribution:
    def test_latency_stamped_per_pose_group(self, fmodel, cameras, monkeypatch):
        # Regression: one perf_counter() stamp after ALL pose groups meant
        # the first group's requests were charged the later groups' render
        # time.  With an instrumented slow second pose, the fast pose's
        # latency must not include the slow pose's 0.25 s.
        import repro.serve.scheduler as scheduler_mod

        real = scheduler_mod.render_foveated_batch
        slow_camera = cameras[1]

        def instrumented(fmodel_arg, camera, **kwargs):
            if camera is slow_camera:
                time.sleep(0.25)
            return real(fmodel_arg, camera, **kwargs)

        monkeypatch.setattr(scheduler_mod, "render_foveated_batch", instrumented)

        async def scenario():
            async with ServeLoop(fmodel) as loop:
                return await asyncio.gather(
                    loop.submit(FrameRequest(0, cameras[0], (20.0, 15.0))),
                    loop.submit(FrameRequest(1, slow_camera, (20.0, 15.0))),
                )

        fast, slow = run(scenario())
        assert slow.latency_s >= 0.25
        assert fast.latency_s < 0.15

    def test_batch_size_is_per_pose_group(self, fmodel, cameras):
        # Regression: FrameResponse.batch_size reported the whole coalesced
        # batch (3 here) while loop.batch_sizes recorded per-pose-group
        # sizes; both must be per-group.
        async def scenario():
            async with ServeLoop(fmodel) as loop:
                spec = loop.serve_config.grid
                g1 = region_center(
                    cameras[0], spec, quantize_gaze(cameras[0], (5.0, 5.0), spec)
                )
                g2 = region_center(
                    cameras[0],
                    spec,
                    quantize_gaze(cameras[0], (60.0, 40.0), spec),
                )
                responses = await asyncio.gather(
                    loop.submit(FrameRequest(0, cameras[0], g1)),
                    loop.submit(FrameRequest(1, cameras[0], g2)),
                    loop.submit(FrameRequest(2, cameras[1], (20.0, 15.0))),
                )
                return loop.batch_sizes, responses

        batch_sizes, (a, b, c) = run(scenario())
        assert sorted(batch_sizes) == [1, 2]
        assert a.batch_size == 2 and b.batch_size == 2
        assert c.batch_size == 1


class TestConfigValidation:
    def test_bad_budget(self):
        with pytest.raises(ValueError, match="batch_budget"):
            ServeConfig(batch_budget=0)

    def test_bad_deadline(self):
        with pytest.raises(ValueError, match="batch_deadline_s"):
            ServeConfig(batch_deadline_s=-1.0)

    def test_compact_response_repr(self, fmodel, cameras):
        async def scenario():
            async with ServeLoop(fmodel) as loop:
                return await loop.submit(FrameRequest(0, cameras[0], (5.0, 5.0)))

        text = repr(run(scenario()))
        # Guard against regressing to the default dataclass repr, which
        # stringifies whole frames (asyncio reprs task results on teardown).
        assert len(text) < 200 and "FrameResponse" in text
