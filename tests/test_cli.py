"""CLI subcommands: parsing and end-to-end execution."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_defaults(self):
        args = build_parser().parse_args(["render", "garden"])
        assert args.trace == "garden"
        assert args.points == 1000
        assert args.width == 128

    def test_prune_fraction_flag(self):
        args = build_parser().parse_args(["prune", "room", "--fraction", "0.3"])
        assert args.fraction == 0.3

    def test_batch_size_flag(self):
        args = build_parser().parse_args(["render", "garden", "--batch-size", "2"])
        assert args.batch_size == 2
        assert build_parser().parse_args(["render", "garden"]).batch_size is None


class TestCommands:
    def test_traces(self, capsys):
        assert main(["traces"]) == 0
        out = capsys.readouterr().out
        assert "bicycle" in out and "deepblending" in out

    def test_render(self, capsys):
        code = main(["render", "bonsai", "--points", "200", "--width", "64",
                     "--height", "48"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tile intersections" in out and "FPS" in out

    def test_render_with_batch_size(self, capsys):
        code = main(["render", "bonsai", "--points", "200", "--width", "64",
                     "--height", "48", "--batch-size", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch size 1" in out and "FPS" in out

    def test_prune(self, capsys):
        code = main(["prune", "bonsai", "--points", "200", "--width", "64",
                     "--height", "48", "--fraction", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dense" in out and "pruned" in out

    def test_foveate(self, capsys):
        code = main(["foveate", "bonsai", "--points", "200", "--width", "64",
                     "--height", "48"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FR speedup" in out

    def test_accel(self, capsys):
        code = main(["accel", "bonsai", "--points", "200", "--width", "64",
                     "--height", "48"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MetaSapiens-TM-IP" in out and "GSCore" in out
