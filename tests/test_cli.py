"""CLI subcommands: parsing and end-to-end execution."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_defaults(self):
        args = build_parser().parse_args(["render", "garden"])
        assert args.trace == "garden"
        assert args.points == 1000
        assert args.width == 128

    def test_prune_fraction_flag(self):
        args = build_parser().parse_args(["prune", "room", "--fraction", "0.3"])
        assert args.fraction == 0.3

    def test_batch_size_flag(self):
        args = build_parser().parse_args(["render", "garden", "--batch-size", "2"])
        assert args.batch_size == 2
        assert build_parser().parse_args(["render", "garden"]).batch_size is None


class TestBackendFlags:
    def test_backends_subcommand(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "packed" in out and "packed-xp" in out and "reference" in out
        assert "numpy" in out  # array namespaces advertised

    def test_backend_list_flag(self, capsys):
        # `--backend list` prints the registry and runs no command.
        assert main(["render", "garden", "--backend", "list"]) == 0
        out = capsys.readouterr().out
        assert "packed-xp" in out and "description" in out

    def test_unknown_backend_errors(self, capsys):
        assert main(["render", "garden", "--backend", "vulkan"]) == 2
        assert "unknown rasterization backend" in capsys.readouterr().err

    def test_unknown_array_api_errors(self, capsys):
        assert main(["render", "garden", "--array-api", "jax"]) == 2
        assert "unknown array namespace" in capsys.readouterr().err

    def test_render_with_packed_xp(self, capsys):
        from repro.splat.backends import set_default_backend

        try:
            code = main(
                ["render", "bonsai", "--points", "150", "--width", "48",
                 "--height", "32", "--backend", "packed-xp",
                 "--array-api", "numpy"]
            )
        finally:
            from repro.splat.backends import set_array_api

            set_default_backend(None)
            set_array_api(None)
        assert code == 0
        assert "FPS" in capsys.readouterr().out


class TestCommands:
    def test_traces(self, capsys):
        assert main(["traces"]) == 0
        out = capsys.readouterr().out
        assert "bicycle" in out and "deepblending" in out

    def test_render(self, capsys):
        code = main(["render", "bonsai", "--points", "200", "--width", "64",
                     "--height", "48"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tile intersections" in out and "FPS" in out
        # The active view cache is reported (satellite: counters surfaced).
        assert "cache-stats: view-cache hits=" in out

    def test_render_with_batch_size(self, capsys):
        code = main(["render", "bonsai", "--points", "200", "--width", "64",
                     "--height", "48", "--batch-size", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch size 1" in out and "FPS" in out

    def test_prune(self, capsys):
        code = main(["prune", "bonsai", "--points", "200", "--width", "64",
                     "--height", "48", "--fraction", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dense" in out and "pruned" in out

    def test_foveate(self, capsys):
        code = main(["foveate", "bonsai", "--points", "200", "--width", "64",
                     "--height", "48"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FR speedup" in out
        # The single frame misses, the gaze trajectory then shares the pose.
        assert "cache-stats: view-cache hits=1 misses=1" in out

    def test_serve_sim(self, capsys):
        code = main(["serve-sim", "bonsai", "--points", "150", "--width", "48",
                     "--height", "32", "--clients", "2", "--frames", "6",
                     "--poses", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "naive per-request" in out
        assert "serve-loop (batched+cached)" in out
        assert "cache-stats:" in out
        assert "serve speedup:" in out
        assert "hit rate" in out

    def test_serve_sim_cache_disabled(self, capsys):
        code = main(["serve-sim", "bonsai", "--points", "150", "--width", "48",
                     "--height", "32", "--clients", "2", "--frames", "4",
                     "--poses", "2", "--cache-mb", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "serve speedup:" in out
        assert "cache-stats:" not in out

    def test_serve_sim_flags(self):
        args = build_parser().parse_args(
            ["serve-sim", "garden", "--clients", "8", "--batch-budget", "4",
             "--zipf", "0.9"]
        )
        assert args.clients == 8
        assert args.batch_budget == 4
        assert args.zipf == 0.9
        # Both knobs now default to None -> resolved through the env /
        # host-profile / built-in precedence at ServeConfig construction.
        assert args.cache_mb is None
        assert build_parser().parse_args(
            ["serve-sim", "garden"]
        ).batch_budget is None

    def test_tune_flags(self):
        # Parse-only: the sweep itself is exercised by tests/test_tune.py.
        args = build_parser().parse_args(
            ["tune", "--quick", "--seed", "3", "--no-serve", "--no-save"]
        )
        assert args.quick and args.seed == 3
        assert args.no_serve and args.no_save
        defaults = build_parser().parse_args(["tune"])
        assert not defaults.quick and defaults.seed == 0
        assert not defaults.no_save and defaults.output is None

    def test_global_profile_flag(self):
        args = build_parser().parse_args(["--profile", "off", "traces"])
        assert args.profile == "off"
        assert build_parser().parse_args(["traces"]).profile is None

    def test_accel(self, capsys):
        code = main(["accel", "bonsai", "--points", "200", "--width", "64",
                     "--height", "48"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MetaSapiens-TM-IP" in out and "GSCore" in out
