"""RenderWorkerPool: bit-identity, lifecycle, crash and staleness handling.

Multi-process tests run under an explicit SIGALRM watchdog: a hung worker
pool must fail the test fast instead of stalling the whole suite (there is
no pytest-timeout plugin in the baked image, so the watchdog is local).
"""

import asyncio
import os
import signal

import numpy as np
import pytest

from repro.foveation import render_foveated, uniform_foveated_model
from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
from repro.scenes import trace_cameras
from repro.serve import (
    BrokenProcessPool,
    FrameRequest,
    RenderWorkerPool,
    ServeConfig,
    ServeLoop,
    StaleWorkerModelError,
    default_workers,
)
from repro.splat import random_model

WIDTH, HEIGHT = 64, 48
TIMEOUT_S = 120


@pytest.fixture(autouse=True)
def multiprocess_timeout():
    """Fail fast (with a traceback) if a pool hangs instead of answering."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"multi-process serve test exceeded {TIMEOUT_S}s watchdog"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="module")
def fmodel():
    return uniform_foveated_model(
        random_model(80, np.random.default_rng(3)),
        EVAL_REGION_LAYOUT,
        EVAL_LEVEL_FRACTIONS,
    )


@pytest.fixture(scope="module")
def cameras():
    _, evals = trace_cameras(
        "kitchen", n_train=4, n_eval=4, width=WIDTH, height=HEIGHT
    )
    return evals


def run(coro):
    return asyncio.run(coro)


class TestWorkerFrames:
    def test_worker_frames_bit_identical_to_inline(self, fmodel, cameras):
        # The acceptance-critical property: moving rendering into worker
        # processes changes scheduling, never pixels — every worker-pool
        # miss matches a per-request render_foveated bit for bit (and so,
        # transitively, the inline exact_frames serve path).
        requests = [
            FrameRequest(i, cameras[i % 3], (10.0 * i + 5.0, 12.0 + 3.0 * i))
            for i in range(5)
        ]

        async def scenario():
            async with ServeLoop(
                fmodel,
                serve_config=ServeConfig(workers=2, cache_max_bytes=None),
            ) as loop:
                responses = await asyncio.gather(
                    *(loop.submit(r) for r in requests)
                )
                return responses, loop._pool.worker_pids()

        responses, pids = run(scenario())
        assert pids and all(pid != os.getpid() for pid in pids)
        for response in responses:
            ref = render_foveated(
                fmodel, response.request.camera, gaze=response.request.gaze
            )
            assert np.array_equal(ref.image, response.result.image)

    def test_worker_pool_caches_and_dedups_like_inline(self, fmodel, cameras):
        # Hits and in-batch dedup are scheduler-side: a worker pool must
        # not change which requests render.
        async def scenario():
            async with ServeLoop(
                fmodel, serve_config=ServeConfig(workers=1)
            ) as loop:
                first = await loop.submit(FrameRequest(0, cameras[0], (20.0, 15.0)))
                second = await loop.submit(FrameRequest(1, cameras[0], (20.0, 15.0)))
                return first, second

        first, second = run(scenario())
        assert not first.cache_hit and second.cache_hit
        assert second.result is first.result

    def test_direct_pool_render_matches_reference(self, fmodel, cameras):
        gazes = [(5.0, 5.0), (40.0, 30.0), None]

        async def scenario():
            with RenderWorkerPool(fmodel, workers=1) as pool:
                return await pool.render(cameras[1], gazes)

        results = run(scenario())
        assert len(results) == len(gazes)
        for gaze, result in zip(gazes, results):
            ref = render_foveated(fmodel, cameras[1], gaze=gaze)
            assert np.array_equal(ref.image, result.image)


class TestFailureHandling:
    def test_pool_crash_propagates_and_close_does_not_hang(self, fmodel, cameras):
        # A worker crash must surface as BrokenProcessPool on the awaiting
        # submit() callers, and close() must still drain and return.
        async def scenario():
            async with ServeLoop(
                fmodel,
                serve_config=ServeConfig(workers=1, cache_max_bytes=None),
            ) as loop:
                await loop.submit(FrameRequest(0, cameras[0], (20.0, 15.0)))
                for pid in loop._pool.worker_pids():
                    os.kill(pid, signal.SIGKILL)
                with pytest.raises(BrokenProcessPool):
                    await loop.submit(FrameRequest(1, cameras[1], (20.0, 15.0)))
            return True

        assert run(scenario())

    def test_stale_model_snapshot_raises(self, fmodel, cameras):
        # Workers snapshot the model at process start; mutating it
        # mid-serve must fail the render loudly instead of silently
        # serving the old parameters.
        mutable = uniform_foveated_model(
            random_model(60, np.random.default_rng(11)),
            EVAL_REGION_LAYOUT,
            EVAL_LEVEL_FRACTIONS,
        )

        async def scenario():
            async with ServeLoop(
                mutable,
                serve_config=ServeConfig(workers=1, cache_max_bytes=None),
            ) as loop:
                await loop.submit(FrameRequest(0, cameras[0], (20.0, 15.0)))
                mutable.base.positions[:, 0] += 0.05
                with pytest.raises(StaleWorkerModelError):
                    await loop.submit(FrameRequest(1, cameras[0], (25.0, 18.0)))
            return True

        assert run(scenario())

    def test_shared_pool_not_closed_by_loop(self, fmodel, cameras):
        # A loop only owns a pool it built itself: a shared pool (the
        # shard router's) must survive one shard's close().
        async def scenario():
            with RenderWorkerPool(fmodel, workers=1) as pool:
                async with ServeLoop(fmodel, worker_pool=pool) as loop:
                    await loop.submit(FrameRequest(0, cameras[0], (20.0, 15.0)))
                # Loop closed; the shared pool must still render.
                results = await pool.render(cameras[0], [(20.0, 15.0)])
                return len(results)

        assert run(scenario()) == 1


class TestConfigAndEnv:
    def test_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ServeConfig(workers=-1)
        with pytest.raises(ValueError, match="workers"):
            RenderWorkerPool(None, workers=0)

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_WORKERS", raising=False)
        assert default_workers() == 0
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "3")
        assert default_workers() == 3
        # Env-knob hardening: bad values warn and fall back to the
        # built-in default instead of crashing the serve path.
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "nope")
        with pytest.warns(RuntimeWarning, match="REPRO_SERVE_WORKERS"):
            assert default_workers() == 0
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "-2")
        with pytest.warns(RuntimeWarning, match="out-of-range"):
            assert default_workers() == 0

    def test_closed_pool_rejects_renders(self, fmodel, cameras):
        pool = RenderWorkerPool(fmodel, workers=1)
        pool.close()
        pool.close()  # idempotent

        async def scenario():
            await pool.render(cameras[0], [(5.0, 5.0)])

        with pytest.raises(RuntimeError, match="closed"):
            run(scenario())
