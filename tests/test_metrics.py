"""Objective quality metrics: PSNR, SSIM, LPIPS proxy."""

import numpy as np
import pytest

from repro.hvs.metrics import lpips_proxy, psnr, ssim


@pytest.fixture()
def images():
    rng = np.random.default_rng(0)
    ref = rng.uniform(size=(32, 48, 3))
    return ref, rng


class TestPSNR:
    def test_identical_is_infinite(self, images):
        ref, _ = images
        assert psnr(ref, ref) == np.inf

    def test_known_value(self):
        ref = np.zeros((4, 4, 3))
        alt = np.full((4, 4, 3), 0.1)  # MSE = 0.01 → PSNR = 20 dB
        assert psnr(ref, alt) == pytest.approx(20.0)

    def test_monotone_in_noise(self, images):
        ref, rng = images
        a = np.clip(ref + rng.normal(scale=0.01, size=ref.shape), 0, 1)
        b = np.clip(ref + rng.normal(scale=0.1, size=ref.shape), 0, 1)
        assert psnr(ref, a) > psnr(ref, b)

    def test_symmetry(self, images):
        ref, rng = images
        alt = rng.uniform(size=ref.shape)
        assert psnr(ref, alt) == pytest.approx(psnr(alt, ref))

    def test_shape_mismatch_rejected(self, images):
        ref, _ = images
        with pytest.raises(ValueError):
            psnr(ref, ref[:-1])


class TestSSIM:
    def test_identical_is_one(self, images):
        ref, _ = images
        assert ssim(ref, ref) == pytest.approx(1.0)

    def test_range(self, images):
        ref, rng = images
        alt = rng.uniform(size=ref.shape)
        value = ssim(ref, alt)
        assert -1.0 <= value <= 1.0

    def test_monotone_in_noise(self, images):
        ref, rng = images
        a = np.clip(ref + rng.normal(scale=0.02, size=ref.shape), 0, 1)
        b = np.clip(ref + rng.normal(scale=0.3, size=ref.shape), 0, 1)
        assert ssim(ref, a) > ssim(ref, b)

    def test_structure_sensitivity(self, images):
        # A constant luminance shift hurts SSIM less than structural noise
        # of the same energy.
        ref, rng = images
        shift = np.clip(ref + 0.1, 0, 1)
        noise = np.clip(ref + rng.normal(scale=0.1, size=ref.shape), 0, 1)
        assert ssim(ref, shift) > ssim(ref, noise)


class TestLPIPSProxy:
    def test_identical_is_zero(self, images):
        ref, _ = images
        assert lpips_proxy(ref, ref) == pytest.approx(0.0, abs=1e-12)

    def test_monotone_in_noise(self, images):
        ref, rng = images
        a = np.clip(ref + rng.normal(scale=0.02, size=ref.shape), 0, 1)
        b = np.clip(ref + rng.normal(scale=0.3, size=ref.shape), 0, 1)
        assert lpips_proxy(ref, a) < lpips_proxy(ref, b)

    def test_nonnegative(self, images):
        ref, rng = images
        alt = rng.uniform(size=ref.shape)
        assert lpips_proxy(ref, alt) >= 0.0

    def test_tiny_images_do_not_crash(self):
        ref = np.random.default_rng(1).uniform(size=(5, 5, 3))
        alt = np.random.default_rng(2).uniform(size=(5, 5, 3))
        assert np.isfinite(lpips_proxy(ref, alt))

    def test_shape_mismatch_rejected(self, images):
        ref, _ = images
        with pytest.raises(ValueError):
            lpips_proxy(ref, ref[:, :-1])
