"""Shared fixtures: a small deterministic scene, cameras, and renders.

Session-scoped where safe (fixtures hand out copies of mutable objects) so
the full suite stays fast despite the pure-Python renderer.
"""

from __future__ import annotations

import os

# Hermeticity: a developer's persisted tuning profile (~/.cache/repro/)
# must not shift knob defaults under the suite.  Tests that exercise
# profiles point REPRO_TUNE_PROFILE at tmp files explicitly; setdefault
# keeps a deliberately exported profile (e.g. a CI leg) in effect.
os.environ.setdefault("REPRO_TUNE_PROFILE", "off")

import numpy as np
import pytest

from repro.scenes import generate_scene, trace_cameras
from repro.splat import Camera, GaussianModel, random_model, render
from repro.splat.renderer import prepare_view


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_scene() -> GaussianModel:
    """A small but non-trivial ground-truth scene (kitchen, ~700 points)."""
    return generate_scene("kitchen", n_points=600)


@pytest.fixture(scope="session")
def small_cameras() -> tuple[list[Camera], list[Camera]]:
    return trace_cameras("kitchen", n_train=4, n_eval=2, width=96, height=64)


@pytest.fixture(scope="session")
def train_cameras(small_cameras):
    return small_cameras[0]


@pytest.fixture(scope="session")
def eval_cameras(small_cameras):
    return small_cameras[1]


@pytest.fixture(scope="session")
def train_targets(small_scene, train_cameras):
    return [render(small_scene, c).image for c in train_cameras]


@pytest.fixture(scope="session")
def rendered(small_scene, train_cameras):
    """One full RenderResult with stats."""
    return render(small_scene, train_cameras[0])


@pytest.fixture(scope="session")
def prepared_view(small_scene, train_cameras):
    """(projected, assignment) for the first training view."""
    return prepare_view(small_scene, train_cameras[0])


@pytest.fixture()
def tiny_model() -> GaussianModel:
    """A fresh 40-point random model (mutable; function-scoped)."""
    return random_model(40, np.random.default_rng(7), extent=2.0)


@pytest.fixture()
def front_camera() -> Camera:
    """Camera at the origin looking down +z."""
    return Camera.from_fov(
        width=64,
        height=48,
        fov_x_deg=60.0,
        position=np.array([0.0, 0.0, -5.0]),
        look_at=np.array([0.0, 0.0, 0.0]),
    )
