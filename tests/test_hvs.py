"""HVS model: eccentricity pooling, features, and the HVSQ metric."""

import numpy as np
import pytest

from repro.hvs import (
    PoolingModel,
    box_filter,
    eccentricity_map,
    feature_stack,
    hvsq,
    hvsq_per_region,
    luminance,
    pooled_statistics,
    pooling_radius_map,
    quantize_radii,
)


class TestPoolingModel:
    def test_diameter_grows_with_eccentricity(self):
        pm = PoolingModel()
        d = pm.diameter_deg(np.array([0.0, 10.0, 30.0]))
        assert d[0] < d[1] < d[2]

    def test_foveal_floor(self):
        pm = PoolingModel(d0_deg=0.3)
        assert pm.diameter_deg(np.array([0.0]))[0] == pytest.approx(0.3)

    def test_quadratic_term(self):
        linear = PoolingModel(k2=0.0)
        quad = PoolingModel(k2=0.01)
        e = np.array([40.0])
        assert quad.diameter_deg(e)[0] > linear.diameter_deg(e)[0]

    def test_pixel_conversion_floor(self):
        pm = PoolingModel()
        assert np.all(pm.diameter_px(np.array([0.0]), degrees_per_pixel=10.0) >= 1.0)

    def test_radius_map_shape(self, front_camera):
        radii = pooling_radius_map(front_camera)
        assert radii.shape == (front_camera.height, front_camera.width)
        # Periphery pools over more pixels than the fovea.
        assert radii[0, 0] > radii[front_camera.height // 2, front_camera.width // 2]


class TestQuantizeRadii:
    def test_conservative_rounding(self):
        radii = np.array([[0, 1, 2], [3, 5, 9]])
        levels, idx = quantize_radii(radii)
        chosen = levels[idx]
        assert np.all(chosen >= radii)

    def test_all_zero(self):
        levels, idx = quantize_radii(np.zeros((4, 4), dtype=int))
        assert np.all(levels[idx] == 0)

    def test_level_count_bounded(self):
        radii = np.arange(100).reshape(10, 10)
        levels, _ = quantize_radii(radii, levels=6)
        assert len(levels) <= 8


class TestFeatures:
    def test_luminance_weights(self):
        img = np.zeros((2, 2, 3))
        img[..., 1] = 1.0  # pure green
        assert np.allclose(luminance(img), 0.587)

    def test_feature_stack_shape(self):
        img = np.random.default_rng(0).uniform(size=(16, 24, 3))
        feats = feature_stack(img)
        assert feats.shape == (4, 16, 24)

    def test_gradients_zero_on_flat_image(self):
        feats = feature_stack(np.full((8, 8, 3), 0.5))
        assert np.allclose(feats[1:], 0.0)

    def test_box_filter_preserves_mean(self):
        img = np.random.default_rng(1).uniform(size=(32, 32))
        filtered = box_filter(img, 3)
        assert filtered.mean() == pytest.approx(img.mean(), rel=0.05)

    def test_box_filter_radius_zero_identity(self):
        img = np.random.default_rng(2).uniform(size=(8, 8))
        assert np.array_equal(box_filter(img, 0), img)

    def test_pooled_statistics_flat_input(self):
        feats = np.full((2, 10, 10), 0.7)
        mean, std = pooled_statistics(feats, 2)
        assert np.allclose(mean, 0.7)
        assert np.allclose(std, 0.0, atol=1e-9)


class TestHVSQ:
    @pytest.fixture()
    def images(self, front_camera):
        rng = np.random.default_rng(3)
        h, w = front_camera.height, front_camera.width
        ref = rng.uniform(size=(h, w, 3))
        return front_camera, ref

    def test_identical_images_zero(self, images):
        cam, ref = images
        assert hvsq(ref, ref, cam).value == pytest.approx(0.0, abs=1e-12)

    def test_more_distortion_higher_hvsq(self, images):
        cam, ref = images
        rng = np.random.default_rng(4)
        small = np.clip(ref + rng.normal(scale=0.02, size=ref.shape), 0, 1)
        large = np.clip(ref + rng.normal(scale=0.2, size=ref.shape), 0, 1)
        assert hvsq(ref, large, cam).value > hvsq(ref, small, cam).value

    def test_peripheral_distortion_cheaper_than_foveal(self, images):
        # The defining property of the metric: the same local scramble is
        # less visible at high eccentricity (bigger pooling, statistics
        # survive shuffling) than under the gaze.
        cam, ref = images
        rng = np.random.default_rng(5)
        h, w = ref.shape[:2]

        def shuffle_patch(img, y0, x0, size=12):
            out = img.copy()
            patch = out[y0 : y0 + size, x0 : x0 + size].reshape(-1, 3)
            out[y0 : y0 + size, x0 : x0 + size] = rng.permutation(patch).reshape(
                size, size, 3
            )
            return out

        foveal = shuffle_patch(ref, h // 2 - 6, w // 2 - 6)
        peripheral = shuffle_patch(ref, 0, 0)
        q_fov = hvsq(ref, foveal, cam).value
        q_per = hvsq(ref, peripheral, cam).value
        assert q_per < q_fov

    def test_region_mask_restricts_average(self, images):
        cam, ref = images
        rng = np.random.default_rng(6)
        altered = ref.copy()
        altered[:10, :10] = rng.uniform(size=(10, 10, 3))  # corrupt a corner
        mask_hit = np.zeros(ref.shape[:2], dtype=bool)
        mask_hit[:10, :10] = True
        mask_miss = np.zeros_like(mask_hit)
        mask_miss[-10:, -10:] = True
        q_hit = hvsq(ref, altered, cam, region_mask=mask_hit).value
        q_miss = hvsq(ref, altered, cam, region_mask=mask_miss).value
        assert q_hit > q_miss

    def test_empty_region_mask_rejected(self, images):
        cam, ref = images
        with pytest.raises(ValueError):
            hvsq(ref, ref, cam, region_mask=np.zeros(ref.shape[:2], dtype=bool))

    def test_shape_mismatch_rejected(self, images):
        cam, ref = images
        with pytest.raises(ValueError):
            hvsq(ref, ref[:-2], cam)

    def test_per_region_values(self, images):
        cam, ref = images
        rng = np.random.default_rng(7)
        altered = np.clip(ref + rng.normal(scale=0.1, size=ref.shape), 0, 1)
        values = hvsq_per_region(ref, altered, cam, (0.0, 10.0, 20.0))
        assert len(values) == 3
        finite = [v for v in values if not np.isnan(v)]
        assert all(v >= 0 for v in finite)

    def test_gaze_matters(self, images):
        cam, ref = images
        altered = ref.copy()
        altered[:16, :16] = 0.0  # kill the top-left corner
        q_far = hvsq(ref, altered, cam, gaze=(cam.width - 1.0, cam.height - 1.0)).value
        q_near = hvsq(ref, altered, cam, gaze=(8.0, 8.0)).value
        assert q_near > q_far
