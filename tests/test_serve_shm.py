"""SlabArena + zero-copy frame transport: allocator, lifecycle, fallback.

The lifecycle tests are the acceptance-critical half: every exit path —
clean close, SIGKILL'd workers behind a BrokenProcessPool, exhaustion
fallback — must leave ``/dev/shm`` with zero ``repro-serve-*`` segments,
and handle-backed frames must stay readable *after* the arena that
produced them closed (numpy views hold no buffer export on the segment,
so a careless ``SharedMemory.close`` unmaps under them — a segfault, not
an exception; see ``SlabArena.close``).

Multi-process tests reuse the SIGALRM watchdog from the worker-pool
suite: a hung pool fails fast instead of stalling the run.
"""

import asyncio
import dataclasses
import gc
import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.foveation import render_foveated, uniform_foveated_model
from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
from repro.scenes import trace_cameras
from repro.serve import (
    ArenaExhausted,
    BrokenProcessPool,
    FrameRequest,
    RenderWorkerPool,
    ServeConfig,
    ServeLoop,
    ShmTransportError,
    SlabArena,
    active_segments,
    resolved_shm_bytes,
    resolved_worker_viewcache,
    shm_available,
)
from repro.serve.shm import (
    DEFAULT_SHM_BYTES,
    SHM_ENV,
    export_result,
    materialize_handle,
)
from repro.serve.workers import DEFAULT_WORKER_VIEWCACHE, VIEWCACHE_ENV
from repro.splat import random_model

WIDTH, HEIGHT = 64, 48
TIMEOUT_S = 120

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


@pytest.fixture(autouse=True)
def multiprocess_timeout():
    """Fail fast (with a traceback) if a pool hangs instead of answering."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(f"shm transport test exceeded {TIMEOUT_S}s watchdog")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this file ends with zero repro-serve-* segments."""
    assert active_segments() == []
    yield
    assert active_segments() == []


@pytest.fixture(scope="module")
def fmodel():
    return uniform_foveated_model(
        random_model(80, np.random.default_rng(3)),
        EVAL_REGION_LAYOUT,
        EVAL_LEVEL_FRACTIONS,
    )


@pytest.fixture(scope="module")
def cameras():
    _, evals = trace_cameras(
        "kitchen", n_train=4, n_eval=4, width=WIDTH, height=HEIGHT
    )
    return evals


def make_arena(data_bytes=1 << 20):
    return SlabArena.create(data_bytes, multiprocessing.get_context().Lock())


def run(coro):
    return asyncio.run(coro)


@dataclasses.dataclass
class FakeResult:
    image: np.ndarray
    spans: np.ndarray
    meta: dict
    label: str


def fake_result(rng, h=8, w=10):
    image = rng.random((h, w, 3)).astype(np.float32)
    spans = rng.integers(0, 100, size=(h, 2), dtype=np.int64)
    return FakeResult(
        image=image,
        spans=spans,
        meta={"counts": rng.integers(0, 9, size=4), "shared": image},
        label="fake",
    )


class TestAllocator:
    def test_lease_release_roundtrip(self):
        arena = make_arena()
        try:
            free0 = arena.stats()["blocks_free"]
            offset, gen = arena.lease(3 * arena.block_size + 1)
            assert offset >= arena.data_offset
            assert arena.stats()["blocks_free"] == free0 - 4
            assert arena.release(offset, gen)
            assert arena.stats()["blocks_free"] == free0
        finally:
            arena.close()

    def test_stale_generation_release_is_noop(self):
        arena = make_arena()
        try:
            offset, gen = arena.lease(1)
            assert arena.release(offset, gen)
            # Double release: slot already free.
            assert not arena.release(offset, gen)
            # Slot re-leased under a new generation: the old stamp must
            # not free it out from under the new owner.
            offset2, gen2 = arena.lease(1)
            assert offset2 == offset and gen2 != gen
            assert not arena.release(offset, gen)
            assert arena.stats()["leases_active"] == 1
            assert arena.release(offset2, gen2)
        finally:
            arena.close()

    def test_bogus_release_offsets_are_noops(self):
        arena = make_arena()
        try:
            assert not arena.release(arena.data_offset + 1, 1)  # misaligned
            assert not arena.release(arena.data_offset - arena.block_size, 1)
        finally:
            arena.close()

    def test_exhaustion_raises(self):
        arena = make_arena()
        try:
            with pytest.raises(ArenaExhausted):
                arena.lease(arena.data_bytes + 1)
            leases = []
            while True:
                try:
                    leases.append(arena.lease(arena.block_size))
                except ArenaExhausted:
                    break
            assert len(leases) == arena.n_blocks
            # Freeing one block makes exactly one single-block lease viable
            # again, but not a two-block one (no contiguous run).
            assert arena.release(*leases[1])
            with pytest.raises(ArenaExhausted):
                arena.lease(2 * arena.block_size)
            arena.lease(1)
        finally:
            arena.close()

    def test_first_fit_reuses_freed_runs(self):
        arena = make_arena()
        try:
            a = arena.lease(2 * arena.block_size)
            b = arena.lease(2 * arena.block_size)
            arena.release(*a)
            c = arena.lease(arena.block_size)
            assert c[0] == a[0]  # first fit lands in the freed head run
            arena.release(*b)
            arena.release(*c)
        finally:
            arena.close()


class TestExportMaterialize:
    def test_roundtrip_bit_identical_and_readonly(self):
        rng = np.random.default_rng(0)
        original = fake_result(rng)
        arena = make_arena()
        handle = export_result(arena, original)
        # The handle is small — that is the whole point of the transport.
        assert handle.nbytes < original.image.nbytes + 4096
        rebuilt = materialize_handle(arena, handle)
        assert np.array_equal(rebuilt.image, original.image)
        assert np.array_equal(rebuilt.spans, original.spans)
        assert np.array_equal(rebuilt.meta["counts"], original.meta["counts"])
        assert rebuilt.label == "fake"
        assert not rebuilt.image.flags.writeable
        # Arrays referenced twice in the tree are stored once and come
        # back as the same view object.
        assert rebuilt.meta["shared"] is rebuilt.image
        arena.close()
        # The segfault regression: views must stay readable after close
        # (the arena retires the mapping instead of unmapping it).
        assert float(rebuilt.image.sum()) == pytest.approx(
            float(original.image.sum())
        )

    def test_gc_of_result_frees_the_lease(self):
        arena = make_arena()
        try:
            rebuilt = materialize_handle(
                arena, export_result(arena, fake_result(np.random.default_rng(1)))
            )
            assert arena.stats()["leases_active"] == 1
            del rebuilt
            gc.collect()
            assert arena.stats()["leases_active"] == 0
        finally:
            arena.close()

    def test_checksum_mismatch_raises_and_releases(self):
        arena = make_arena()
        try:
            handle = export_result(
                arena, fake_result(np.random.default_rng(2))
            )
            # Corrupt one plane byte behind the handle's back.
            plane = arena.ndarray((1,), np.uint8, handle.offset)
            plane[0] ^= 0xFF
            with pytest.raises(ShmTransportError, match="checksum"):
                materialize_handle(arena, handle)
            assert arena.stats()["leases_active"] == 0
        finally:
            arena.close()

    def test_object_arrays_are_rejected(self):
        arena = make_arena()
        try:
            bad = np.empty(2, dtype=object)
            with pytest.raises(ShmTransportError, match="object arrays"):
                export_result(arena, {"bad": bad})
            assert arena.stats()["leases_active"] == 0
        finally:
            arena.close()

    def test_clean_close_unlinks(self):
        arena = make_arena()
        assert arena.name in active_segments()
        arena.close()
        arena.close()  # idempotent
        assert active_segments() == []


class TestPoolTransport:
    def test_pool_frames_bit_identical_over_shm(self, fmodel, cameras):
        gazes = [(5.0, 5.0), (40.0, 30.0), None]

        async def scenario():
            with RenderWorkerPool(fmodel, workers=1, shm_bytes=16 << 20) as pool:
                results = await pool.render(cameras[1], gazes)
                return results, pool.transport_stats()

        results, stats = run(scenario())
        assert stats["transport"] == "shm"
        assert stats["frames_via_shm"] == len(gazes)
        assert stats["frames_via_pipe"] == 0
        assert stats["bytes_via_shm"] > 0
        for gaze, result in zip(gazes, results):
            ref = render_foveated(fmodel, cameras[1], gaze=gaze)
            assert np.array_equal(ref.image, result.image)
        assert active_segments() == []

    def test_exhaustion_falls_back_to_pipe_bit_identically(self, fmodel, cameras):
        # An arena too small for a single frame: every frame falls back,
        # pixels must not change, and the segment must still unlink.
        gazes = [(5.0, 5.0), (40.0, 30.0)]

        async def scenario():
            with RenderWorkerPool(fmodel, workers=1, shm_bytes=1) as pool:
                results = await pool.render(cameras[0], gazes)
                return results, pool.transport_stats()

        results, stats = run(scenario())
        assert stats["transport"] == "shm"  # arena exists, frames degraded
        assert stats["frames_via_shm"] == 0
        assert stats["frames_via_pipe"] == len(gazes)
        assert stats["shm_fallbacks"] == len(gazes)
        for gaze, result in zip(gazes, results):
            ref = render_foveated(fmodel, cameras[0], gaze=gaze)
            assert np.array_equal(ref.image, result.image)
        assert active_segments() == []

    def test_shm_zero_disables_arena(self, fmodel, cameras):
        async def scenario():
            with RenderWorkerPool(fmodel, workers=1, shm_bytes=0) as pool:
                await pool.render(cameras[0], [(5.0, 5.0)])
                return pool.transport_stats()

        stats = run(scenario())
        assert stats["transport"] == "pipe"
        assert stats["frames_via_pipe"] == 1
        assert stats["shm_fallbacks"] == 0

    def test_cached_frame_outlives_pool_close(self, fmodel, cameras):
        # FrameCache holds handle-backed frames without copying; the pixels
        # must survive the pool (and arena) shutting down underneath them.
        async def scenario():
            async with ServeLoop(
                fmodel,
                serve_config=ServeConfig(workers=1, shm_bytes=16 << 20),
            ) as loop:
                response = await loop.submit(
                    FrameRequest(0, cameras[0], (20.0, 15.0))
                )
                return response

        response = run(scenario())
        assert active_segments() == []
        ref = render_foveated(fmodel, cameras[0], gaze=(20.0, 15.0))
        assert np.array_equal(ref.image, response.result.image)

    def test_sigkilled_pool_leaks_no_segments(self, fmodel, cameras):
        async def scenario():
            async with ServeLoop(
                fmodel,
                serve_config=ServeConfig(
                    workers=1, cache_max_bytes=None, shm_bytes=16 << 20
                ),
            ) as loop:
                await loop.submit(FrameRequest(0, cameras[0], (20.0, 15.0)))
                for pid in loop._pool.worker_pids():
                    os.kill(pid, signal.SIGKILL)
                with pytest.raises(BrokenProcessPool):
                    await loop.submit(FrameRequest(1, cameras[1], (20.0, 15.0)))
            return True

        assert run(scenario())
        assert active_segments() == []

    def test_worker_pids_survives_missing_executor_internals(self, fmodel, cameras):
        # _executor._processes is a private surface; losing it must mean
        # "no pids", not an AttributeError in crash-handling paths.
        with RenderWorkerPool(fmodel, workers=1, shm_bytes=0) as pool:
            run(pool.render(cameras[0], [(5.0, 5.0)]))
            assert pool.worker_pids()
            executor = pool._executor
            try:
                pool._executor = object()
                assert pool.worker_pids() == []
            finally:
                pool._executor = executor


class TestKnobs:
    def test_resolved_shm_bytes_precedence(self, monkeypatch):
        monkeypatch.delenv(SHM_ENV, raising=False)
        assert resolved_shm_bytes() == DEFAULT_SHM_BYTES
        monkeypatch.setenv(SHM_ENV, str(8 << 20))
        assert resolved_shm_bytes() == 8 << 20
        assert resolved_shm_bytes(4 << 20) == 4 << 20  # explicit beats env
        assert resolved_shm_bytes(0) == 0
        monkeypatch.setenv(SHM_ENV, "0")
        assert resolved_shm_bytes() == 0

    def test_resolved_shm_bytes_bad_values(self, monkeypatch):
        with pytest.raises(ValueError, match="non-negative"):
            resolved_shm_bytes(-1)
        monkeypatch.setenv(SHM_ENV, "lots")
        with pytest.warns(RuntimeWarning, match=SHM_ENV):
            assert resolved_shm_bytes() == DEFAULT_SHM_BYTES
        monkeypatch.setenv(SHM_ENV, "-5")
        with pytest.warns(RuntimeWarning, match="out-of-range"):
            assert resolved_shm_bytes() == DEFAULT_SHM_BYTES

    def test_resolved_worker_viewcache_precedence(self, monkeypatch):
        monkeypatch.delenv(VIEWCACHE_ENV, raising=False)
        assert resolved_worker_viewcache() == DEFAULT_WORKER_VIEWCACHE
        monkeypatch.setenv(VIEWCACHE_ENV, "7")
        assert resolved_worker_viewcache() == 7
        assert resolved_worker_viewcache(3) == 3  # explicit beats env
        with pytest.raises(ValueError, match="at least 1"):
            resolved_worker_viewcache(0)
        monkeypatch.setenv(VIEWCACHE_ENV, "zero")
        with pytest.warns(RuntimeWarning, match=VIEWCACHE_ENV):
            assert resolved_worker_viewcache() == DEFAULT_WORKER_VIEWCACHE

    def test_serve_config_shm_sentinels(self, monkeypatch):
        monkeypatch.delenv(SHM_ENV, raising=False)
        assert ServeConfig(shm_bytes="auto").shm_bytes == DEFAULT_SHM_BYTES
        assert ServeConfig(shm_bytes=None).shm_bytes == 0
        assert ServeConfig(shm_bytes=12 << 20).shm_bytes == 12 << 20
        monkeypatch.setenv(SHM_ENV, str(2 << 20))
        assert ServeConfig(shm_bytes="auto").shm_bytes == 2 << 20
        with pytest.raises(ValueError, match="shm_bytes"):
            ServeConfig(shm_bytes="lots")
        with pytest.raises(ValueError, match="non-negative"):
            ServeConfig(shm_bytes=-4)
