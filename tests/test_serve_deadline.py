"""Deadline scheduling, drop-or-degrade, gaze prefetch, and the schedule oracle."""

import asyncio
import time

import numpy as np
import pytest

from repro.foveation import render_foveated, uniform_foveated_model
from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
from repro.scenes import trace_cameras
from repro.serve import (
    FrameRequest,
    GazePredictor,
    OracleCostModel,
    OracleRequest,
    PredictorConfig,
    ServeConfig,
    ServeLoop,
    WorkloadSpec,
    exhaustive_schedule,
    generate_serve_trace,
    greedy_schedule,
    oracle_problem_from_trace,
    quantize_gaze,
    region_center,
    replay_trace,
    replay_trace_sharded,
    schedule_gap,
    simulate_schedule,
)
from repro.splat import random_model

WIDTH, HEIGHT = 64, 48


@pytest.fixture(scope="module")
def fmodel():
    return uniform_foveated_model(
        random_model(80, np.random.default_rng(3)),
        EVAL_REGION_LAYOUT,
        EVAL_LEVEL_FRACTIONS,
    )


@pytest.fixture(scope="module")
def cameras():
    _, evals = trace_cameras(
        "kitchen", n_train=4, n_eval=4, width=WIDTH, height=HEIGHT
    )
    return evals


def run(coro):
    return asyncio.run(coro)


async def wait_for_counter(read, target, timeout_s=5.0):
    t0 = time.perf_counter()
    while read() < target:
        if time.perf_counter() - t0 > timeout_s:
            raise AssertionError(
                f"counter stuck at {read()} (wanted {target}) after {timeout_s}s"
            )
        await asyncio.sleep(0.005)


class TestPredictor:
    def test_no_history_predicts_nothing(self):
        predictor = GazePredictor()
        assert predictor.predict(0, WIDTH, HEIGHT) == []
        predictor.observe(0, (10.0, 10.0))
        assert predictor.predict(0, WIDTH, HEIGHT) == []  # one sample, no velocity

    def test_none_gaze_is_ignored(self):
        predictor = GazePredictor()
        predictor.observe(0, None)
        predictor.observe(0, (10.0, 10.0))
        assert predictor.velocity(0) is None

    def test_fixation_holds_position(self):
        predictor = GazePredictor(PredictorConfig(horizon=3, saccade_px=4.0))
        predictor.observe(0, (30.0, 20.0))
        predictor.observe(0, (31.0, 20.5))  # drift step « saccade_px
        assert predictor.predict(0, WIDTH, HEIGHT) == [(31.0, 20.5)]

    def test_saccade_extrapolates_ballistically(self):
        predictor = GazePredictor(PredictorConfig(horizon=2))
        predictor.observe(0, (10.0, 10.0))
        predictor.observe(0, (30.0, 10.0))  # 20 px step: a saccade
        assert predictor.predict(0, WIDTH, HEIGHT) == [(50.0, 10.0), (63.0, 10.0)]

    def test_constant_velocity_mode_extrapolates_drift_too(self):
        predictor = GazePredictor(
            PredictorConfig(horizon=2, saccade_aware=False)
        )
        predictor.observe(0, (10.0, 10.0))
        predictor.observe(0, (11.0, 10.0))
        assert predictor.predict(0, WIDTH, HEIGHT) == [(12.0, 10.0), (13.0, 10.0)]

    def test_clients_are_independent_and_forgettable(self):
        predictor = GazePredictor(PredictorConfig(horizon=1))
        predictor.observe(0, (10.0, 10.0))
        predictor.observe(0, (30.0, 10.0))
        assert predictor.predict(1, WIDTH, HEIGHT) == []
        predictor.forget(0)
        assert predictor.predict(0, WIDTH, HEIGHT) == []

    def test_config_validation(self):
        with pytest.raises(ValueError, match="horizon"):
            PredictorConfig(horizon=0)
        with pytest.raises(ValueError, match="history"):
            PredictorConfig(history=1)
        with pytest.raises(ValueError, match="saccade_px"):
            PredictorConfig(saccade_px=0.0)
        with pytest.raises(ValueError, match="max_backlog"):
            PredictorConfig(max_backlog=0)

    def test_serve_config_refresh_validation(self):
        with pytest.raises(ValueError, match="refresh_hz"):
            ServeConfig(refresh_hz=0.0)
        assert ServeConfig(refresh_hz=90.0).frame_budget_s == pytest.approx(
            1.0 / 90.0
        )
        assert ServeConfig().frame_budget_s is None


class TestDeadlineAccounting:
    def test_on_time_plus_misses_equals_served(self, fmodel, cameras):
        async def scenario():
            async with ServeLoop(fmodel) as loop:
                await asyncio.gather(
                    # A deadline no render can make, a generous one, none.
                    loop.submit(
                        FrameRequest(0, cameras[0], (5.0, 5.0), deadline_s=1e-9)
                    ),
                    loop.submit(
                        FrameRequest(1, cameras[1], (5.0, 5.0), deadline_s=10.0)
                    ),
                    loop.submit(FrameRequest(2, cameras[2], (5.0, 5.0))),
                )
                return loop

        loop = run(scenario())
        assert loop.requests_served == 3
        assert loop.on_time + loop.deadline_misses == loop.requests_served
        assert loop.deadline_misses >= 1  # the 1 ns deadline cannot be met
        stats = loop.deadline_stats()
        assert stats["on_time"] + stats["deadline_misses"] == stats["served"]

    def test_response_flags_and_default_deadline(self, fmodel, cameras):
        async def scenario():
            config = ServeConfig(refresh_hz=1000.0, degrade_on_deadline=False)
            async with ServeLoop(fmodel, serve_config=config) as loop:
                derived = await loop.submit(
                    FrameRequest(0, cameras[0], (5.0, 5.0))
                )
                explicit = await loop.submit(
                    FrameRequest(1, cameras[1], (5.0, 5.0), deadline_s=10.0)
                )
                return derived, explicit

        derived, explicit = run(scenario())
        # No per-request deadline: one refresh period (1 ms) is derived.
        assert derived.deadline_s == pytest.approx(1e-3)
        assert explicit.deadline_s == 10.0  # explicit deadline wins
        assert not explicit.deadline_missed

    def test_no_deadline_means_best_effort(self, fmodel, cameras):
        async def scenario():
            async with ServeLoop(fmodel) as loop:
                return await loop.submit(FrameRequest(0, cameras[0], (5.0, 5.0)))

        response = run(scenario())
        assert response.deadline_s is None
        assert not response.deadline_missed and not response.degraded


class TestDegradePolicy:
    def test_predicted_late_render_degrades_to_neighbour_region(
        self, fmodel, cameras
    ):
        async def scenario():
            async with ServeLoop(fmodel) as loop:
                spec = loop.serve_config.grid
                seed = await loop.submit(
                    FrameRequest(0, cameras[0], (5.0, 24.0))
                )
                # Make every render look hopeless against a 50 ms budget.
                loop._render_ewma_s = 10.0
                other = region_center(
                    cameras[0],
                    spec,
                    quantize_gaze(cameras[0], (45.0, 24.0), spec),
                )
                degraded = await loop.submit(
                    FrameRequest(1, cameras[0], other, deadline_s=0.05)
                )
                return loop, seed, degraded

        loop, seed, degraded = run(scenario())
        assert degraded.degraded and not degraded.cache_hit
        # The served frame IS the neighbouring region's cached frame.
        assert degraded.result is seed.result
        # Degrading beat the (generous) deadline instead of missing it.
        assert not degraded.deadline_missed
        assert loop.degraded_served == 1
        # The exact key was backfilled at low priority so the region heals.
        assert loop.degrade_backfills == 1

    def test_backfill_heals_the_degraded_region(self, fmodel, cameras):
        async def scenario():
            async with ServeLoop(fmodel) as loop:
                spec = loop.serve_config.grid
                await loop.submit(FrameRequest(0, cameras[0], (5.0, 24.0)))
                loop._render_ewma_s = 10.0
                other = region_center(
                    cameras[0],
                    spec,
                    quantize_gaze(cameras[0], (45.0, 24.0), spec),
                )
                degraded = await loop.submit(
                    FrameRequest(1, cameras[0], other, deadline_s=0.05)
                )
                await wait_for_counter(lambda: loop.prefetch_rendered, 1)
                loop._render_ewma_s = None  # lift the pressure
                healed = await loop.submit(
                    FrameRequest(1, cameras[0], other, deadline_s=0.05)
                )
                return degraded, healed

        degraded, healed = run(scenario())
        assert degraded.degraded
        assert healed.cache_hit and not healed.degraded
        ref = render_foveated(
            fmodel, degraded.request.camera, gaze=degraded.request.gaze
        )
        # The backfill rendered the degraded request's own gaze, so the
        # healed frame is the exact-path frame for that gaze.
        assert np.array_equal(ref.image, healed.result.image)

    def test_degrade_disabled_renders_late(self, fmodel, cameras):
        async def scenario():
            config = ServeConfig(degrade_on_deadline=False)
            async with ServeLoop(fmodel, serve_config=config) as loop:
                spec = loop.serve_config.grid
                await loop.submit(FrameRequest(0, cameras[0], (5.0, 24.0)))
                loop._render_ewma_s = 10.0
                other = region_center(
                    cameras[0],
                    spec,
                    quantize_gaze(cameras[0], (45.0, 24.0), spec),
                )
                return await loop.submit(
                    FrameRequest(1, cameras[0], other, deadline_s=1e-9)
                )

        response = run(scenario())
        assert not response.degraded and not response.cache_hit
        assert response.deadline_missed

    def test_degrade_needs_a_cached_alternate(self, fmodel, cameras):
        async def scenario():
            async with ServeLoop(fmodel) as loop:
                loop._render_ewma_s = 10.0
                # Cold cache: nothing to degrade to, so the request renders.
                return await loop.submit(
                    FrameRequest(0, cameras[0], (5.0, 24.0), deadline_s=1e-9)
                )

        response = run(scenario())
        assert not response.degraded and not response.cache_hit


class TestPrefetch:
    def test_prefetch_fills_cache_but_never_client_metrics(
        self, fmodel, cameras
    ):
        config = PredictorConfig(horizon=2)

        async def scenario():
            serve_config = ServeConfig(prefetch=config)
            async with ServeLoop(fmodel, serve_config=serve_config) as loop:
                await loop.submit(FrameRequest(0, cameras[0], (5.0, 24.0)))
                await loop.submit(FrameRequest(0, cameras[0], (25.0, 24.0)))
                await wait_for_counter(lambda: loop.prefetch_rendered, 2)

                # Client-traffic accounting is untouched by the speculation.
                assert loop.requests_served == 2
                assert len(loop.latencies_s) == 2
                assert sum(loop.batch_sizes) == 2
                assert loop.frame_cache.misses == 2
                assert loop.frame_cache.hits == 0

                # The same scanpath through an identical predictor names the
                # prefetched gazes; requesting one must now be a cache hit.
                twin = GazePredictor(config)
                twin.observe(0, (5.0, 24.0))
                twin.observe(0, (25.0, 24.0))
                predicted = twin.predict(0, WIDTH, HEIGHT)[0]
                hit = await loop.submit(FrameRequest(1, cameras[0], predicted))
                return loop, hit

        loop, hit = run(scenario())
        assert loop.prefetch_enqueued == 2
        assert hit.cache_hit
        assert loop.prefetch_useful == 1
        assert loop.requests_served == 3

    def test_prefetched_frame_matches_exact_render_of_predicted_gaze(
        self, fmodel, cameras
    ):
        config = PredictorConfig(horizon=1)

        async def scenario():
            serve_config = ServeConfig(prefetch=config)
            async with ServeLoop(fmodel, serve_config=serve_config) as loop:
                await loop.submit(FrameRequest(0, cameras[0], (5.0, 24.0)))
                await loop.submit(FrameRequest(0, cameras[0], (25.0, 24.0)))
                await wait_for_counter(lambda: loop.prefetch_rendered, 1)
                twin = GazePredictor(config)
                twin.observe(0, (5.0, 24.0))
                twin.observe(0, (25.0, 24.0))
                predicted = twin.predict(0, WIDTH, HEIGHT)[0]
                hit = await loop.submit(
                    FrameRequest(1, cameras[0], predicted)
                )
                return predicted, hit

        predicted, hit = run(scenario())
        assert hit.cache_hit
        ref = render_foveated(fmodel, cameras[0], gaze=predicted)
        # The speculation rendered the predicted gaze through the exact
        # path, so a client asking for that gaze gets the bit-exact frame.
        assert np.array_equal(ref.image, hit.result.image)

    def test_stale_and_redundant_prefetches_drop(self, fmodel, cameras):
        async def scenario():
            serve_config = ServeConfig(
                prefetch=PredictorConfig(horizon=2),
                refresh_hz=1000.0,
                degrade_on_deadline=False,
            )
            async with ServeLoop(fmodel, serve_config=serve_config) as loop:
                await loop.submit(FrameRequest(0, cameras[0], (5.0, 24.0)))
                await loop.submit(FrameRequest(0, cameras[0], (25.0, 24.0)))
                await wait_for_counter(
                    lambda: loop.prefetch_rendered + loop.prefetch_dropped, 2
                )
                return loop

        loop = run(scenario())
        # At a 1 ms refresh the speculation expiry is tight: everything
        # enqueued either rendered in time or was dropped as stale — and
        # the ledger accounts for every speculation.
        stats = loop.prefetch_stats()
        assert stats["enqueued"] == 2
        assert stats["rendered"] + stats["dropped"] == 2
        assert stats["backlog"] == 0


class TestReplayMetrics:
    def test_deadline_columns_populated_only_with_deadlines(
        self, fmodel, cameras
    ):
        plain = generate_serve_trace(
            cameras, WorkloadSpec(n_clients=2, frames_per_client=6, seed=2)
        )
        _, report = replay_trace(fmodel, plain)
        assert report.deadline_miss_rate is None
        assert report.degraded_rate is None
        assert report.prefetch_stats is None
        assert not any("deadlines:" in line for line in report.lines())

        timed = generate_serve_trace(
            cameras,
            WorkloadSpec(
                n_clients=2, frames_per_client=6, refresh_hz=90.0, seed=2
            ),
        )
        _, report = replay_trace(
            fmodel, timed, serve_config=ServeConfig(refresh_hz=90.0)
        )
        assert 0.0 <= report.deadline_miss_rate <= 1.0
        assert 0.0 <= report.degraded_rate <= 1.0
        assert any("deadlines:" in line for line in report.lines())

    def test_prefetch_preserves_rendered_plus_hits_invariant(
        self, fmodel, cameras
    ):
        trace = generate_serve_trace(
            cameras,
            WorkloadSpec(
                n_clients=3,
                frames_per_client=8,
                pose_dwell_frames=(6, 8),
                seed=4,
            ),
        )
        serve_config = ServeConfig(prefetch=PredictorConfig(horizon=2))
        responses, report = replay_trace(fmodel, trace, serve_config=serve_config)
        rendered = sum(
            size * count for size, count in report.batch_histogram.items()
        )
        hits = sum(1 for r in responses if r.cache_hit)
        # Speculative renders never leak into the client ledger: client
        # renders + client hits still account for every request exactly.
        assert rendered + hits == trace.n_requests
        assert report.prefetch_stats is not None
        assert report.prefetch_stats["enqueued"] >= 0

    def test_misses_bit_identical_with_and_without_prefetch(
        self, fmodel, cameras
    ):
        trace = generate_serve_trace(
            cameras,
            WorkloadSpec(
                n_clients=2,
                frames_per_client=8,
                pose_dwell_frames=(6, 8),
                seed=4,
            ),
        )
        base_responses, _ = replay_trace(fmodel, trace)
        pf_responses, _ = replay_trace(
            fmodel,
            trace,
            serve_config=ServeConfig(prefetch=PredictorConfig(horizon=2)),
        )
        compared = 0
        for base, pf in zip(base_responses, pf_responses):
            if base.cache_hit or pf.cache_hit or base.degraded or pf.degraded:
                continue
            # Exact-render-path requests in both replays: identical frames.
            assert np.array_equal(base.result.image, pf.result.image)
            compared += 1
        assert compared > 0

    def test_sharded_replay_carries_deadline_metrics(self, fmodel, cameras):
        trace = generate_serve_trace(
            cameras,
            WorkloadSpec(
                n_clients=2, frames_per_client=6, refresh_hz=90.0, seed=2
            ),
        )
        responses, report = replay_trace_sharded(
            fmodel,
            trace,
            serve_config=ServeConfig(refresh_hz=90.0),
            n_shards=2,
        )
        assert report.deadline_miss_rate is not None
        assert report.shard_stats["deadline_misses"] == sum(
            1 for r in responses if r.deadline_missed
        )
        assert report.shard_stats["requests_served"] == trace.n_requests
        for shard in report.shard_stats["shards"]:
            assert "deadline_misses" in shard and "degraded_served" in shard


class TestScheduleOracle:
    def test_simulate_schedule_hand_example(self):
        cost = OracleCostModel(prepare_s=1.0, render_s=0.25, batch_s=0.05)
        requests = [
            OracleRequest(arrival_s=0.0, key=0, pose=0),
            OracleRequest(arrival_s=0.0, key=0, pose=0),  # dedups onto key 0
            OracleRequest(arrival_s=0.0, key=1, pose=0),  # same pose, new key
        ]
        outcome = simulate_schedule(requests, [(0, 1, 2)], cost)
        # One batch: 0.05 + one prepare (1.0) + two renders (0.5) = 1.55.
        assert outcome.completion_s == (1.55, 1.55, 1.55)
        assert outcome.deadline_misses == 0
        later = simulate_schedule(requests, [(0, 1), (2,)], cost)
        # Key 0 rendered in batch 1; batch 2 pays only batch + render.
        assert later.completion_s[2] == pytest.approx(1.3 + 0.05 + 0.25)

    def test_exhaustive_never_worse_than_greedy(self):
        rng = np.random.default_rng(11)
        for trial in range(5):
            requests = [
                OracleRequest(
                    arrival_s=float(rng.uniform(0, 2)),
                    key=int(rng.integers(0, 4)),
                    pose=int(rng.integers(0, 2)),
                    deadline_s=float(rng.uniform(1, 5)),
                )
                for _ in range(6)
            ]
            optimal = exhaustive_schedule(requests)
            heuristic = greedy_schedule(requests)
            assert optimal.objective <= heuristic.objective

    def test_gap_report_fields(self):
        requests = [
            OracleRequest(arrival_s=0.1 * i, key=i % 3, pose=i % 2, deadline_s=3.0)
            for i in range(6)
        ]
        gap = schedule_gap(requests)
        assert gap["n_requests"] == 6
        assert gap["miss_gap"] >= 0  # the oracle is optimal on misses
        if gap["miss_gap"] == 0:
            # Same miss count: the oracle also minimizes latency.
            assert gap["latency_gap"] >= 0

    def test_request_cap_enforced(self):
        requests = [
            OracleRequest(arrival_s=0.0, key=i, pose=0) for i in range(9)
        ]
        with pytest.raises(ValueError, match="capped"):
            exhaustive_schedule(requests)

    def test_oracle_problem_from_trace(self, cameras):
        trace = generate_serve_trace(
            cameras,
            WorkloadSpec(
                n_clients=2, frames_per_client=6, refresh_hz=90.0, seed=2
            ),
        )
        problem = oracle_problem_from_trace(trace, n_requests=6)
        assert len(problem) == 6
        for oracle_req, trace_req in zip(problem, trace.requests):
            assert oracle_req.arrival_s == trace_req.time_s
            # The trace's refresh deadline becomes an absolute deadline.
            assert oracle_req.deadline_s == pytest.approx(
                trace_req.time_s + 1.0 / 90.0
            )
        gap = schedule_gap(problem)
        assert gap["heuristic"].deadline_misses >= gap["optimal"].deadline_misses


class TestWorkloadDeadlines:
    def test_refresh_stamps_deadlines(self, cameras):
        spec = WorkloadSpec(
            n_clients=2, frames_per_client=4, refresh_hz=72.0, seed=1
        )
        trace = generate_serve_trace(cameras, spec)
        assert all(
            r.deadline_s == pytest.approx(1.0 / 72.0) for r in trace.requests
        )

    def test_no_refresh_means_no_deadlines(self, cameras):
        trace = generate_serve_trace(
            cameras, WorkloadSpec(n_clients=2, frames_per_client=4, seed=1)
        )
        assert all(r.deadline_s is None for r in trace.requests)

    def test_refresh_validation(self):
        with pytest.raises(ValueError, match="refresh_hz"):
            WorkloadSpec(refresh_hz=-1.0)
