"""Intersection-aware pruning mechanics."""

import numpy as np
import pytest

from repro.core.ce import compute_ce
from repro.core.pruning import prune_lowest_ce, prune_to_count
from repro.splat import random_model, render


@pytest.fixture()
def model():
    return random_model(50, np.random.default_rng(11))


class TestPruneLowestCE:
    def test_removes_requested_fraction(self, model):
        ce = np.arange(50, dtype=float)
        result = prune_lowest_ce(model, ce, 0.2)
        assert result.model.num_points == 40
        assert result.prune_fraction == pytest.approx(0.2)

    def test_lowest_ce_removed_first(self, model):
        ce = np.arange(50, dtype=float)
        result = prune_lowest_ce(model, ce, 0.1)
        assert np.array_equal(result.removed_indices, np.arange(5))

    def test_partition_is_exact(self, model):
        ce = np.random.default_rng(0).uniform(size=50)
        result = prune_lowest_ce(model, ce, 0.3)
        together = np.sort(np.concatenate([result.kept_indices, result.removed_indices]))
        assert np.array_equal(together, np.arange(50))

    def test_never_removes_everything(self, model):
        result = prune_lowest_ce(model, np.zeros(50), 1.0)
        assert result.model.num_points >= 1

    def test_zero_fraction_keeps_all(self, model):
        result = prune_lowest_ce(model, np.zeros(50), 0.0)
        assert result.model.num_points == 50

    def test_invalid_fraction_rejected(self, model):
        with pytest.raises(ValueError):
            prune_lowest_ce(model, np.zeros(50), 1.5)

    def test_mismatched_ce_rejected(self, model):
        with pytest.raises(ValueError):
            prune_lowest_ce(model, np.zeros(10), 0.1)

    def test_deterministic_tie_breaking(self, model):
        ce = np.zeros(50)
        a = prune_lowest_ce(model, ce, 0.5)
        b = prune_lowest_ce(model, ce, 0.5)
        assert np.array_equal(a.kept_indices, b.kept_indices)


class TestPruneToCount:
    def test_exact_budget(self, model):
        ce = np.random.default_rng(1).uniform(size=50)
        for target in [37, 25, 10, 1]:
            result = prune_to_count(model, ce, target)
            assert result.model.num_points == target

    def test_budget_above_size_is_noop(self, model):
        result = prune_to_count(model, np.zeros(50), 100)
        assert result.model.num_points == 50

    def test_invalid_budget_rejected(self, model):
        with pytest.raises(ValueError):
            prune_to_count(model, np.zeros(50), 0)


class TestPruningReducesWork:
    def test_ce_pruning_cuts_intersections(self, small_scene, train_cameras):
        ce = compute_ce(small_scene, train_cameras)
        pruned = prune_lowest_ce(small_scene, ce.ce, 0.4).model
        before = render(small_scene, train_cameras[0]).stats.total_intersections
        after = render(pruned, train_cameras[0]).stats.total_intersections
        assert after < before

    def test_ce_pruning_beats_random_pruning_on_quality(
        self, small_scene, train_cameras, train_targets
    ):
        """The paper's core claim: CE-guided pruning keeps quality better
        than removing the same number of random points."""
        from repro.hvs.metrics import psnr

        rng = np.random.default_rng(2)
        ce = compute_ce(small_scene, train_cameras)
        n = small_scene.num_points
        ce_pruned = prune_lowest_ce(small_scene, ce.ce, 0.5).model
        random_kept = np.sort(rng.choice(n, size=ce_pruned.num_points, replace=False))
        random_pruned = small_scene.subset(random_kept)

        def quality(model):
            values = [
                psnr(t, render(model, c).image)
                for c, t in zip(train_cameras, train_targets)
            ]
            return np.mean([v for v in values if np.isfinite(v)])

        assert quality(ce_pruned) > quality(random_pruned)
