"""Spherical harmonics: basis shapes, values, and round trips."""

import numpy as np
import pytest

from repro.splat.sh import (
    SH_C0,
    dc_to_rgb,
    eval_sh,
    num_sh_coeffs,
    rgb_to_dc,
    sh_basis,
)


class TestNumCoeffs:
    def test_degree_counts(self):
        assert [num_sh_coeffs(d) for d in range(4)] == [1, 4, 9, 16]

    @pytest.mark.parametrize("degree", [-1, 4, 10])
    def test_invalid_degree_rejected(self, degree):
        with pytest.raises(ValueError):
            num_sh_coeffs(degree)


class TestBasis:
    def test_shape(self):
        dirs = np.random.default_rng(0).normal(size=(17, 3))
        for degree in range(4):
            assert sh_basis(dirs, degree).shape == (17, num_sh_coeffs(degree))

    def test_dc_is_constant(self):
        dirs = np.random.default_rng(1).normal(size=(50, 3))
        basis = sh_basis(dirs, 3)
        assert np.allclose(basis[:, 0], SH_C0)

    def test_degree1_linear_in_direction(self):
        # Band-1 terms are odd: negating the direction flips their sign.
        dirs = np.random.default_rng(2).normal(size=(20, 3))
        b_pos = sh_basis(dirs, 1)
        b_neg = sh_basis(-dirs, 1)
        assert np.allclose(b_pos[:, 1:4], -b_neg[:, 1:4])

    def test_degree2_even_in_direction(self):
        dirs = np.random.default_rng(3).normal(size=(20, 3))
        b_pos = sh_basis(dirs, 2)
        b_neg = sh_basis(-dirs, 2)
        assert np.allclose(b_pos[:, 4:9], b_neg[:, 4:9])

    def test_normalization_invariance(self):
        # Direction magnitude must not matter.
        dirs = np.random.default_rng(4).normal(size=(10, 3))
        assert np.allclose(sh_basis(dirs, 3), sh_basis(dirs * 7.5, 3))

    def test_zero_direction_does_not_crash(self):
        basis = sh_basis(np.zeros((1, 3)), 3)
        assert np.all(np.isfinite(basis))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            sh_basis(np.zeros((5, 2)), 1)

    def test_orthogonality_monte_carlo(self):
        # Basis functions are orthogonal under uniform sphere sampling.
        rng = np.random.default_rng(5)
        dirs = rng.normal(size=(200_000, 3))
        basis = sh_basis(dirs, 2)
        gram = basis.T @ basis / dirs.shape[0]
        off_diag = gram - np.diag(np.diag(gram))
        assert np.max(np.abs(off_diag)) < 0.01


class TestEval:
    def test_zero_coeffs_give_mid_grey(self):
        coeffs = np.zeros((5, 4, 3))
        dirs = np.random.default_rng(0).normal(size=(5, 3))
        assert np.allclose(eval_sh(coeffs, dirs), 0.5)

    def test_clamped_at_zero(self):
        coeffs = np.zeros((1, 1, 3))
        coeffs[0, 0, :] = -100.0
        rgb = eval_sh(coeffs, np.array([[0.0, 0.0, 1.0]]))
        assert np.all(rgb == 0.0)

    def test_degree_truncation(self):
        rng = np.random.default_rng(6)
        coeffs = rng.normal(size=(8, 16, 3))
        dirs = rng.normal(size=(8, 3))
        full = eval_sh(coeffs, dirs, degree=3)
        dc_only = eval_sh(coeffs, dirs, degree=0)
        assert not np.allclose(full, dc_only)
        # Degree-0 evaluation must ignore everything but the DC term.
        coeffs2 = coeffs.copy()
        coeffs2[:, 1:, :] = 0.0
        assert np.allclose(eval_sh(coeffs2, dirs), dc_only)

    def test_requested_degree_exceeding_stored_rejected(self):
        with pytest.raises(ValueError):
            eval_sh(np.zeros((2, 4, 3)), np.ones((2, 3)), degree=3)

    def test_invalid_coeff_count_rejected(self):
        with pytest.raises(ValueError):
            eval_sh(np.zeros((2, 5, 3)), np.ones((2, 3)))


class TestDCConversions:
    def test_round_trip(self):
        rgb = np.random.default_rng(7).uniform(0.05, 0.95, size=(30, 3))
        assert np.allclose(dc_to_rgb(rgb_to_dc(rgb)), rgb)

    def test_eval_matches_dc_conversion(self):
        rgb = np.array([[0.2, 0.5, 0.9]])
        coeffs = np.zeros((1, 1, 3))
        coeffs[0, 0, :] = rgb_to_dc(rgb)[0]
        out = eval_sh(coeffs, np.array([[0.0, 0.0, 1.0]]))
        assert np.allclose(out, rgb)
