"""SMFR / MMFR baselines and their storage accounting (Table 1)."""

import numpy as np
import pytest

from repro.foveation import (
    RegionLayout,
    make_mmfr,
    make_smfr,
    mmfr_storage_bytes,
    smfr_storage_bytes,
)


@pytest.fixture(scope="module")
def layout():
    return RegionLayout(boundaries_deg=(0.0, 12.0, 20.0, 28.0))


class TestSMFR:
    def test_random_subsetting_deterministic(self, small_scene, layout):
        a = make_smfr(small_scene, layout, seed=3)
        b = make_smfr(small_scene, layout, seed=3)
        assert np.array_equal(a.quality_bounds, b.quality_bounds)

    def test_different_seed_different_subset(self, small_scene, layout):
        a = make_smfr(small_scene, layout, seed=1)
        b = make_smfr(small_scene, layout, seed=2)
        assert not np.array_equal(a.quality_bounds, b.quality_bounds)

    def test_no_multiversion_divergence(self, small_scene, layout):
        sm = make_smfr(small_scene, layout)
        for level in range(1, 5):
            assert np.allclose(sm.level_opacity_logits(level), sm.base.opacity_logits)

    def test_storage_is_single_model(self, small_scene, layout):
        sm = make_smfr(small_scene, layout)
        assert smfr_storage_bytes(sm) <= small_scene.storage_bytes() * 1.02


class TestMMFR:
    @pytest.fixture(scope="class")
    def models(self, small_scene, train_cameras, train_targets, layout):
        return make_mmfr(
            small_scene, train_cameras[:2], train_targets[:2], layout,
            level_fractions=(1.0, 0.5, 0.25, 0.1), finetune_iterations=1,
        )

    def test_one_model_per_level(self, models, layout):
        assert len(models) == layout.num_levels

    def test_level_sizes_match_fractions(self, models, small_scene):
        n = small_scene.num_points
        sizes = [m.num_points for m in models]
        assert sizes[0] == n
        assert sizes[1] == pytest.approx(0.5 * n, abs=1)
        assert sizes[3] == pytest.approx(0.1 * n, abs=1)

    def test_storage_is_sum_of_models(self, models):
        total = mmfr_storage_bytes(models)
        assert total == sum(m.storage_bytes() for m in models)
        # ≈ 1.85x the single-model storage for these fractions.
        assert total > 1.5 * models[0].storage_bytes()

    def test_wrong_fraction_count_rejected(self, small_scene, train_cameras, train_targets, layout):
        with pytest.raises(ValueError):
            make_mmfr(
                small_scene, train_cameras[:1], train_targets[:1], layout,
                level_fractions=(1.0, 0.5),
            )


class TestStorageComparison:
    def test_paper_ordering(self, small_scene, train_cameras, train_targets, layout):
        """Table 1: SMFR (1x) < ours (~1.06x) << MMFR (~1.9x)."""
        sm = make_smfr(small_scene, layout)
        mm = make_mmfr(
            small_scene, train_cameras[:1], train_targets[:1], layout,
            level_fractions=(1.0, 0.5, 0.25, 0.1), finetune_iterations=0,
        )
        from repro.foveation import build_foveated_model, FRTrainConfig

        ours = build_foveated_model(
            small_scene, train_cameras[:1], train_targets[:1], layout,
            FRTrainConfig(level_fractions=(1.0, 0.5, 0.25, 0.1), finetune_iterations=0),
            finetune=False,
        ).model

        smfr_b = smfr_storage_bytes(sm)
        ours_b = ours.storage_bytes()
        mmfr_b = mmfr_storage_bytes(mm)
        assert smfr_b < ours_b < mmfr_b
        assert ours_b / smfr_b < 1.2
        assert mmfr_b / smfr_b > 1.5
