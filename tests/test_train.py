"""Training substrate: losses, Adam, and the fine-tuning loop."""

import numpy as np
import pytest

from repro.train import Adam, TrainConfig, finetune, image_loss, l1_loss, l2_loss


class TestLosses:
    def test_l1_zero_on_identical(self):
        img = np.random.default_rng(0).uniform(size=(8, 8, 3))
        assert l1_loss(img, img) == 0.0

    def test_l2_known_value(self):
        a = np.zeros((2, 2, 3))
        b = np.full((2, 2, 3), 0.5)
        assert l2_loss(a, b) == pytest.approx(0.25)

    def test_image_loss_gradient_finite_difference(self):
        rng = np.random.default_rng(1)
        rendered = rng.uniform(0.2, 0.8, size=(4, 5, 3))
        target = rng.uniform(0.2, 0.8, size=(4, 5, 3))
        loss, grad = image_loss(rendered, target, l1_weight=0.5)
        eps = 1e-7
        for idx in [(0, 0, 0), (2, 3, 1), (3, 4, 2)]:
            bumped = rendered.copy()
            bumped[idx] += eps
            loss_p, _ = image_loss(bumped, target, l1_weight=0.5)
            assert (loss_p - loss) / eps == pytest.approx(grad[idx], rel=1e-4)

    def test_image_loss_shape_mismatch(self):
        with pytest.raises(ValueError):
            image_loss(np.zeros((2, 2, 3)), np.zeros((3, 2, 3)))


class TestAdam:
    def test_minimizes_quadratic(self):
        params = {"x": np.array([5.0, -3.0])}
        opt = Adam({"x": 0.1})
        for _ in range(500):
            opt.step(params, {"x": 2.0 * params["x"]})
        assert np.allclose(params["x"], 0.0, atol=1e-3)

    def test_zero_lr_freezes_parameter(self):
        params = {"x": np.array([1.0]), "y": np.array([1.0])}
        opt = Adam({"x": 0.1, "y": 0.0})
        opt.step(params, {"x": np.array([1.0]), "y": np.array([1.0])})
        assert params["x"][0] != 1.0
        assert params["y"][0] == 1.0

    def test_unknown_parameter_rejected(self):
        opt = Adam({"x": 0.1})
        with pytest.raises(KeyError):
            opt.step({"x": np.zeros(1)}, {"z": np.zeros(1)})

    def test_reset_clears_state(self):
        params = {"x": np.array([1.0])}
        opt = Adam({"x": 0.1})
        opt.step(params, {"x": np.array([1.0])})
        opt.reset()
        assert opt._t == 0


class TestFinetune:
    def test_recovers_color_perturbation(self, small_scene, train_cameras, train_targets):
        """Perturb DC colours, fine-tune, and verify the loss drops."""
        perturbed = small_scene.copy()
        rng = np.random.default_rng(5)
        perturbed.sh[:, 0, :] += rng.normal(scale=0.15, size=(perturbed.num_points, 3))

        config = TrainConfig(iterations=8, lr_sh_dc=0.05, lr_opacity=0.0, lr_log_scale=0.0)
        result = finetune(perturbed, train_cameras[:2], train_targets[:2], config)
        assert result.photometric[-1] < result.photometric[0] * 0.8

    def test_regularizer_invoked_and_logged(self, small_scene, train_cameras, train_targets):
        calls = []

        def reg(model):
            calls.append(1)
            return 0.123, {"log_scales": np.zeros(model.num_points)}

        config = TrainConfig(iterations=2)
        result = finetune(
            small_scene.copy(), train_cameras[:1], train_targets[:1], config, regularizer=reg
        )
        assert len(calls) == 2
        assert result.regularizer == [0.123, 0.123]
        assert result.total[0] == pytest.approx(result.photometric[0] + 0.123)

    def test_mismatched_views_rejected(self, small_scene, train_cameras, train_targets):
        with pytest.raises(ValueError):
            finetune(small_scene.copy(), train_cameras[:2], train_targets[:1])

    def test_empty_views_rejected(self, small_scene):
        with pytest.raises(ValueError):
            finetune(small_scene.copy(), [], [])

    def test_unknown_regularizer_param_rejected(
        self, small_scene, train_cameras, train_targets
    ):
        def reg(model):
            return 0.0, {"positions": np.zeros((model.num_points, 3))}

        with pytest.raises(KeyError):
            finetune(
                small_scene.copy(),
                train_cameras[:1],
                train_targets[:1],
                TrainConfig(iterations=1),
                regularizer=reg,
            )
