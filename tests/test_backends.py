"""Backend equivalence: ``packed`` must match ``reference`` within 1e-10.

The packed engine replaces the per-tile loops with whole-frame segmented
span operations; these tests pin it to the reference oracle on images,
statistics and gradients across random scenes — including zero-splat tiles,
per-pixel sorting, non-tile-multiple resolutions, and foveated frames with
active blend bands — plus the registry/selection machinery.
"""

import numpy as np
import pytest

from repro.foveation import render_foveated, render_multi_model, uniform_foveated_model
from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
from repro.scenes import generate_scene, trace_cameras
from repro.splat import Camera, GaussianModel, RenderConfig, random_model, render
from repro.splat.backends import (
    DEFAULT_BACKEND,
    available_backends,
    get_backend,
    resolve_backend_name,
    set_default_backend,
)
from repro.splat.rasterizer import rasterize, rasterize_backward
from repro.splat.renderer import prepare_view

TOL = 1e-10


def random_scene(seed: int, n: int = 200) -> GaussianModel:
    return random_model(n, np.random.default_rng(seed), extent=2.0)


def camera(width=96, height=64) -> Camera:
    return Camera.from_fov(
        width=width,
        height=height,
        fov_x_deg=60.0,
        position=np.array([0.0, 0.0, -4.0]),
        look_at=np.array([0.0, 0.0, 0.0]),
    )


def assert_render_equivalent(model, cam, **config_kwargs):
    ref = render(model, cam, RenderConfig(backend="reference", **config_kwargs))
    pk = render(model, cam, RenderConfig(backend="packed", **config_kwargs))
    assert np.allclose(ref.image, pk.image, atol=TOL)
    if ref.stats is not None:
        assert np.array_equal(
            ref.stats.dominated_pixels, pk.stats.dominated_pixels
        )
        assert np.array_equal(
            ref.stats.intersections_per_tile, pk.stats.intersections_per_tile
        )
        assert np.array_equal(ref.stats.tiles_per_point, pk.stats.tiles_per_point)
    return ref, pk


class TestForwardEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_scenes(self, seed):
        assert_render_equivalent(random_scene(seed), camera())

    @pytest.mark.parametrize("seed", [0, 1])
    def test_per_pixel_sort(self, seed):
        assert_render_equivalent(random_scene(seed), camera(), per_pixel_sort=True)

    def test_per_pixel_sort_early_termination_gate(self):
        # Regression: the per-pixel-sorted early-termination gate sits at the
        # per-pixel *deepest* splat of the full tile list.  A mid-depth
        # splat that is narrow in y (its spans prune away from most rows)
        # can still be the per-pixel deepest under the depth key
        # ``z (1 + 0.01 q)``, so the packed engine must keep every tile row
        # in this mode; with a white background the gate mismatch would
        # show up at ~1e-4.
        model = GaussianModel(
            positions=np.array(
                [[0.0, 0.0, 0.0], [0.1, 0.3, 1.0], [0.0, 0.0, 2.0]]
            ),
            log_scales=np.log(
                [[0.6, 0.6, 0.3], [0.5, 0.004, 0.3], [0.7, 0.7, 0.3]]
            ),
            rotations=np.tile([1.0, 0.0, 0.0, 0.0], (3, 1)),
            opacity_logits=np.array([6.0, 2.0, 6.0]),
            sh=np.full((3, 1, 3), 0.4),
        )
        assert_render_equivalent(
            model, camera(), per_pixel_sort=True, background=(1.0, 1.0, 1.0)
        )

    def test_non_tile_multiple_resolution(self):
        # 70x52 is not a multiple of the 16px tile: edge tiles have partial
        # rows and lanes.
        assert_render_equivalent(random_scene(7), camera(width=70, height=52))

    def test_zero_splat_tiles(self):
        # A single tiny splat: almost every tile is empty.
        model = GaussianModel(
            positions=np.array([[0.0, 0.0, 0.0]]),
            log_scales=np.log(np.full((1, 3), 0.05)),
            rotations=np.array([[1.0, 0.0, 0.0, 0.0]]),
            opacity_logits=np.array([2.0]),
            sh=np.full((1, 1, 3), 0.5),
        )
        ref, pk = assert_render_equivalent(
            model, camera(), background=(0.2, 0.4, 0.6)
        )
        assert ref.stats.total_intersections > 0

    def test_fully_empty_frame(self):
        model = random_scene(11)
        model.positions[:, 2] = -100.0  # everything behind the camera
        ref, pk = assert_render_equivalent(model, camera())
        assert ref.stats.total_intersections == 0

    def test_kitchen_scene(self, small_scene, train_cameras):
        assert_render_equivalent(small_scene, train_cameras[0])


class TestBackwardEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gradients_match(self, seed):
        model = random_scene(seed)
        cam = camera()
        projected, assignment = prepare_view(model, cam)
        image, _ = rasterize(
            projected, assignment, model.num_points, collect_stats=False,
            backend="reference",
        )
        grads = {
            be: rasterize_backward(
                projected,
                assignment,
                model.num_points,
                grad_image=image,
                backend=be,
            )
            for be in ("reference", "packed")
        }
        for field in ("color", "opacity", "log_scale"):
            ref = getattr(grads["reference"], field)
            pk = getattr(grads["packed"], field)
            assert np.allclose(ref, pk, atol=TOL), field

    def test_gradients_with_background(self):
        model = random_scene(5)
        cam = camera(width=70, height=52)
        background = np.array([0.3, 0.1, 0.8])
        projected, assignment = prepare_view(model, cam)
        grad_image = np.random.default_rng(0).normal(
            size=(cam.height, cam.width, 3)
        )
        ref = rasterize_backward(
            projected, assignment, model.num_points, grad_image=grad_image,
            background=background, backend="reference",
        )
        pk = rasterize_backward(
            projected, assignment, model.num_points, grad_image=grad_image,
            background=background, backend="packed",
        )
        for field in ("color", "opacity", "log_scale"):
            assert np.allclose(
                getattr(ref, field), getattr(pk, field), atol=TOL
            ), field


class TestFoveatedEquivalence:
    @pytest.fixture(scope="class")
    def fmodel(self, small_scene):
        return uniform_foveated_model(
            small_scene, EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS
        )

    def assert_fr_equal(self, ref, pk):
        assert np.allclose(ref.image, pk.image, atol=TOL)
        assert ref.stats.blend_pixels == pk.stats.blend_pixels
        assert np.array_equal(
            ref.stats.sort_intersections_per_tile,
            pk.stats.sort_intersections_per_tile,
        )
        assert np.allclose(
            ref.stats.raster_intersections_per_tile,
            pk.stats.raster_intersections_per_tile,
            atol=TOL,
        )

    def test_foveated_with_active_blend_bands(self, fmodel, train_cameras):
        ref = render_foveated(
            fmodel, train_cameras[0], config=RenderConfig(backend="reference")
        )
        pk = render_foveated(
            fmodel, train_cameras[0], config=RenderConfig(backend="packed")
        )
        # The scenario must actually exercise the two-level blending path.
        assert ref.stats.blend_pixels > 0
        self.assert_fr_equal(ref, pk)

    @pytest.mark.parametrize("gaze", [(0.0, 0.0), (-50.0, 500.0)])
    def test_foveated_gazes(self, fmodel, train_cameras, gaze):
        ref = render_foveated(
            fmodel, train_cameras[0], gaze=gaze,
            config=RenderConfig(backend="reference"),
        )
        pk = render_foveated(
            fmodel, train_cameras[0], gaze=gaze,
            config=RenderConfig(backend="packed"),
        )
        self.assert_fr_equal(ref, pk)

    def test_multi_model(self, fmodel, train_cameras):
        models = [fmodel.level_model(t) for t in range(1, fmodel.num_levels + 1)]
        ref = render_multi_model(
            models, fmodel.layout, train_cameras[0],
            config=RenderConfig(backend="reference"),
        )
        pk = render_multi_model(
            models, fmodel.layout, train_cameras[0],
            config=RenderConfig(backend="packed"),
        )
        assert ref.stats.blend_pixels > 0
        self.assert_fr_equal(ref, pk)


class TestBackendSelection:
    def test_available(self):
        assert set(available_backends()) >= {"packed", "reference"}

    def test_default_is_packed(self):
        assert DEFAULT_BACKEND == "packed"
        assert resolve_backend_name(None) in available_backends()

    def test_explicit_name_wins(self):
        assert get_backend("reference").name == "reference"
        assert get_backend("packed").name == "packed"

    def test_instance_passthrough(self):
        engine = get_backend("reference")
        assert get_backend(engine) is engine

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "reference")
        assert resolve_backend_name(None) == "reference"
        assert get_backend(None).name == "reference"

    def test_set_default_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "packed")
        set_default_backend("reference")
        try:
            assert resolve_backend_name(None) == "reference"
        finally:
            set_default_backend(None)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown rasterization backend"):
            get_backend("does-not-exist")
        with pytest.raises(ValueError, match="unknown rasterization backend"):
            set_default_backend("does-not-exist")

    def test_trace_setup_with_reference_backend(self):
        # harness-level selection: ground truth renders run on the chosen
        # engine and match the default one.
        from repro.harness import setup_trace

        a = setup_trace("kitchen", n_points=120, width=48, height=32, backend="packed")
        b = setup_trace(
            "kitchen", n_points=120, width=48, height=32, backend="reference"
        )
        for ia, ib in zip(a.eval_targets, b.eval_targets):
            assert np.allclose(ia, ib, atol=TOL)


class TestRowSpansSubset:
    """``RowSpans.subset`` must keep span ordering and group offsets coherent.

    Previously only exercised indirectly through foveated blend bands; the
    batch path also relies on subset-produced spans concatenating cleanly.
    """

    @pytest.fixture(scope="class")
    def spans(self):
        from repro.splat.backends.segments import build_row_spans, build_segments

        model = random_scene(3, n=300)
        projected, assignment = prepare_view(model, camera())
        spans = build_row_spans(projected, build_segments(assignment))
        assert spans.num_spans > 0 and spans.num_groups > 10
        return spans

    @pytest.fixture(scope="class")
    def subset(self, spans):
        # Keep every other tile that actually carries spans.
        num_tiles = spans.seg.grid.num_tiles
        mask = np.zeros(num_tiles, dtype=bool)
        mask[np.unique(spans.span_tile)[::2]] = True
        sub, keep_spans = spans.subset(mask)
        assert 0 < sub.num_spans < spans.num_spans
        return mask, sub, keep_spans

    def test_span_ordering_preserved(self, spans, subset):
        mask, sub, keep_spans = subset
        # The kept spans are exactly the masked rows, in original order.
        assert np.array_equal(sub.span_pair, spans.span_pair[keep_spans])
        assert np.array_equal(sub.span_tile, spans.span_tile[keep_spans])
        assert np.array_equal(sub.span_y, spans.span_y[keep_spans])
        # Still sorted by (tile, row) with stable depth order inside groups.
        key = sub.span_tile * spans.seg.grid.tile_size + sub.span_y
        assert np.all(np.diff(key) >= 0)

    def test_group_offsets_consistent(self, spans, subset):
        mask, sub, _ = subset
        keep_groups = mask[spans.group_tile]
        # Group lengths survive; offsets are recomputed densely.
        assert np.array_equal(sub.groups.lens, spans.groups.lens[keep_groups])
        assert np.array_equal(
            sub.groups.starts, np.cumsum(sub.groups.lens) - sub.groups.lens
        )
        assert int(sub.groups.lens.sum()) == sub.num_spans
        # Group metadata rows align with the groups' first spans.
        assert np.array_equal(sub.group_tile, sub.span_tile[sub.groups.starts])
        assert np.array_equal(sub.group_y, sub.span_y[sub.groups.starts])
        assert np.array_equal(
            sub.group_has_tile_last, spans.group_has_tile_last[keep_groups]
        )

    def test_subset_concatenates_cleanly(self, spans, subset):
        from repro.splat.backends.segments import concat_spans

        mask, sub, _ = subset
        inverse, _ = spans.subset(~mask)
        batch = concat_spans([sub, inverse])
        assert batch.num_spans == spans.num_spans
        assert batch.num_groups == spans.num_groups
        # from_lengths over the concatenated group lens reproduces each
        # view's internal offsets, shifted by the view's span offset.
        for v, part in enumerate(batch.views):
            got = batch.groups.starts[batch.view_groups(v)]
            assert np.array_equal(got, part.groups.starts + batch.span_offsets[v])


class TestSceneEquivalenceAtScale:
    def test_generated_scene_256(self):
        scene = generate_scene("garden", n_points=800)
        (train, _) = trace_cameras(
            "garden", n_train=1, n_eval=1, width=160, height=112
        )
        assert_render_equivalent(scene, train[0])
