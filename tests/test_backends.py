"""Backend equivalence: ``packed`` must match ``reference`` within 1e-10.

The packed engine replaces the per-tile loops with whole-frame segmented
span operations; these tests pin it to the reference oracle on images,
statistics and gradients across random scenes — including zero-splat tiles,
per-pixel sorting, non-tile-multiple resolutions, and foveated frames with
active blend bands — plus the registry/selection machinery.
"""

import numpy as np
import pytest

from repro.foveation import render_foveated, render_multi_model, uniform_foveated_model
from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
from repro.scenes import generate_scene, trace_cameras
from repro.splat import Camera, GaussianModel, RenderConfig, random_model, render
from repro.splat.backends import (
    DEFAULT_BACKEND,
    available_backends,
    backend_info,
    backend_registry,
    describe_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
    set_default_backend,
    span_chunk_budget,
    supports_forward_batch,
)
from repro.splat.backends.packed import (
    DEFAULT_SPAN_CHUNK_BUDGET,
    TILE_BUDGET_ENV,
    TiledPackedBackend,
    forward_unpooled,
    split_spans,
    tile_span_budget,
)
from repro.splat.backends.segments import build_row_spans, build_segments
from repro.splat.rasterizer import rasterize, rasterize_backward
from repro.splat.renderer import prepare_view

TOL = 1e-10

# The numpy-namespace ``packed-xp`` entry must satisfy every equivalence
# the hand-tuned ``packed`` engine does.
PACKED_BACKENDS = ("packed", "packed-xp")


def random_scene(seed: int, n: int = 200) -> GaussianModel:
    return random_model(n, np.random.default_rng(seed), extent=2.0)


def camera(width=96, height=64) -> Camera:
    return Camera.from_fov(
        width=width,
        height=height,
        fov_x_deg=60.0,
        position=np.array([0.0, 0.0, -4.0]),
        look_at=np.array([0.0, 0.0, 0.0]),
    )


def assert_render_equivalent(model, cam, packed_backend="packed", **config_kwargs):
    ref = render(model, cam, RenderConfig(backend="reference", **config_kwargs))
    pk = render(model, cam, RenderConfig(backend=packed_backend, **config_kwargs))
    assert np.allclose(ref.image, pk.image, atol=TOL)
    if ref.stats is not None:
        assert np.array_equal(
            ref.stats.dominated_pixels, pk.stats.dominated_pixels
        )
        assert np.array_equal(
            ref.stats.intersections_per_tile, pk.stats.intersections_per_tile
        )
        assert np.array_equal(ref.stats.tiles_per_point, pk.stats.tiles_per_point)
    return ref, pk


class TestForwardEquivalence:
    @pytest.mark.parametrize("backend", PACKED_BACKENDS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_scenes(self, seed, backend):
        assert_render_equivalent(random_scene(seed), camera(), packed_backend=backend)

    @pytest.mark.parametrize("backend", PACKED_BACKENDS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_per_pixel_sort(self, seed, backend):
        assert_render_equivalent(
            random_scene(seed), camera(), packed_backend=backend,
            per_pixel_sort=True,
        )

    def test_per_pixel_sort_early_termination_gate(self):
        # Regression: the per-pixel-sorted early-termination gate sits at the
        # per-pixel *deepest* splat of the full tile list.  A mid-depth
        # splat that is narrow in y (its spans prune away from most rows)
        # can still be the per-pixel deepest under the depth key
        # ``z (1 + 0.01 q)``, so the packed engine must keep every tile row
        # in this mode; with a white background the gate mismatch would
        # show up at ~1e-4.
        model = GaussianModel(
            positions=np.array(
                [[0.0, 0.0, 0.0], [0.1, 0.3, 1.0], [0.0, 0.0, 2.0]]
            ),
            log_scales=np.log(
                [[0.6, 0.6, 0.3], [0.5, 0.004, 0.3], [0.7, 0.7, 0.3]]
            ),
            rotations=np.tile([1.0, 0.0, 0.0, 0.0], (3, 1)),
            opacity_logits=np.array([6.0, 2.0, 6.0]),
            sh=np.full((3, 1, 3), 0.4),
        )
        assert_render_equivalent(
            model, camera(), per_pixel_sort=True, background=(1.0, 1.0, 1.0)
        )

    @pytest.mark.parametrize("backend", PACKED_BACKENDS)
    def test_non_tile_multiple_resolution(self, backend):
        # 70x52 is not a multiple of the 16px tile: edge tiles have partial
        # rows and lanes.
        assert_render_equivalent(
            random_scene(7), camera(width=70, height=52), packed_backend=backend
        )

    def test_packed_xp_numpy_is_bitwise_packed(self):
        # On the numpy namespace the xp entry runs the very same kernels.
        from repro.splat.backends import resolve_array_api_name

        if resolve_array_api_name(None) != "numpy":
            pytest.skip("packed-xp resolves a non-numpy namespace here")
        model = random_scene(9)
        pk = render(model, camera(), RenderConfig(backend="packed"))
        xp = render(model, camera(), RenderConfig(backend="packed-xp"))
        assert np.array_equal(pk.image, xp.image)
        assert np.array_equal(pk.stats.dominated_pixels, xp.stats.dominated_pixels)

    def test_zero_splat_tiles(self):
        # A single tiny splat: almost every tile is empty.
        model = GaussianModel(
            positions=np.array([[0.0, 0.0, 0.0]]),
            log_scales=np.log(np.full((1, 3), 0.05)),
            rotations=np.array([[1.0, 0.0, 0.0, 0.0]]),
            opacity_logits=np.array([2.0]),
            sh=np.full((1, 1, 3), 0.5),
        )
        ref, pk = assert_render_equivalent(
            model, camera(), background=(0.2, 0.4, 0.6)
        )
        assert ref.stats.total_intersections > 0

    def test_fully_empty_frame(self):
        model = random_scene(11)
        model.positions[:, 2] = -100.0  # everything behind the camera
        ref, pk = assert_render_equivalent(model, camera())
        assert ref.stats.total_intersections == 0

    def test_kitchen_scene(self, small_scene, train_cameras):
        assert_render_equivalent(small_scene, train_cameras[0])


class TestBackwardEquivalence:
    @pytest.mark.parametrize("backend", PACKED_BACKENDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gradients_match(self, seed, backend):
        model = random_scene(seed)
        cam = camera()
        projected, assignment = prepare_view(model, cam)
        image, _ = rasterize(
            projected, assignment, model.num_points, collect_stats=False,
            backend="reference",
        )
        grads = {
            be: rasterize_backward(
                projected,
                assignment,
                model.num_points,
                grad_image=image,
                backend=be,
            )
            for be in ("reference", backend)
        }
        for field in ("color", "opacity", "log_scale"):
            ref = getattr(grads["reference"], field)
            pk = getattr(grads[backend], field)
            assert np.allclose(ref, pk, atol=TOL), field

    def test_gradients_with_background(self):
        model = random_scene(5)
        cam = camera(width=70, height=52)
        background = np.array([0.3, 0.1, 0.8])
        projected, assignment = prepare_view(model, cam)
        grad_image = np.random.default_rng(0).normal(
            size=(cam.height, cam.width, 3)
        )
        ref = rasterize_backward(
            projected, assignment, model.num_points, grad_image=grad_image,
            background=background, backend="reference",
        )
        pk = rasterize_backward(
            projected, assignment, model.num_points, grad_image=grad_image,
            background=background, backend="packed",
        )
        for field in ("color", "opacity", "log_scale"):
            assert np.allclose(
                getattr(ref, field), getattr(pk, field), atol=TOL
            ), field


class TestFoveatedEquivalence:
    @pytest.fixture(scope="class")
    def fmodel(self, small_scene):
        return uniform_foveated_model(
            small_scene, EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS
        )

    def assert_fr_equal(self, ref, pk):
        assert np.allclose(ref.image, pk.image, atol=TOL)
        assert ref.stats.blend_pixels == pk.stats.blend_pixels
        assert np.array_equal(
            ref.stats.sort_intersections_per_tile,
            pk.stats.sort_intersections_per_tile,
        )
        assert np.allclose(
            ref.stats.raster_intersections_per_tile,
            pk.stats.raster_intersections_per_tile,
            atol=TOL,
        )

    @pytest.mark.parametrize("backend", PACKED_BACKENDS)
    def test_foveated_with_active_blend_bands(self, fmodel, train_cameras, backend):
        ref = render_foveated(
            fmodel, train_cameras[0], config=RenderConfig(backend="reference")
        )
        pk = render_foveated(
            fmodel, train_cameras[0], config=RenderConfig(backend=backend)
        )
        # The scenario must actually exercise the two-level blending path.
        assert ref.stats.blend_pixels > 0
        self.assert_fr_equal(ref, pk)

    @pytest.mark.parametrize("gaze", [(0.0, 0.0), (-50.0, 500.0)])
    def test_foveated_gazes(self, fmodel, train_cameras, gaze):
        ref = render_foveated(
            fmodel, train_cameras[0], gaze=gaze,
            config=RenderConfig(backend="reference"),
        )
        pk = render_foveated(
            fmodel, train_cameras[0], gaze=gaze,
            config=RenderConfig(backend="packed"),
        )
        self.assert_fr_equal(ref, pk)

    def test_multi_model(self, fmodel, train_cameras):
        models = [fmodel.level_model(t) for t in range(1, fmodel.num_levels + 1)]
        ref = render_multi_model(
            models, fmodel.layout, train_cameras[0],
            config=RenderConfig(backend="reference"),
        )
        pk = render_multi_model(
            models, fmodel.layout, train_cameras[0],
            config=RenderConfig(backend="packed"),
        )
        assert ref.stats.blend_pixels > 0
        self.assert_fr_equal(ref, pk)


class TestBackendSelection:
    def test_available(self):
        assert set(available_backends()) >= {"packed", "reference"}

    def test_default_is_packed(self):
        assert DEFAULT_BACKEND == "packed"
        assert resolve_backend_name(None) in available_backends()

    def test_explicit_name_wins(self):
        assert get_backend("reference").name == "reference"
        assert get_backend("packed").name == "packed"

    def test_instance_passthrough(self):
        engine = get_backend("reference")
        assert get_backend(engine) is engine

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "reference")
        assert resolve_backend_name(None) == "reference"
        assert get_backend(None).name == "reference"

    def test_set_default_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "packed")
        set_default_backend("reference")
        try:
            assert resolve_backend_name(None) == "reference"
        finally:
            set_default_backend(None)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown rasterization backend"):
            get_backend("does-not-exist")
        with pytest.raises(ValueError, match="unknown rasterization backend"):
            set_default_backend("does-not-exist")

    def test_trace_setup_with_reference_backend(self):
        # harness-level selection: ground truth renders run on the chosen
        # engine and match the default one.
        from repro.harness import setup_trace

        a = setup_trace("kitchen", n_points=120, width=48, height=32, backend="packed")
        b = setup_trace(
            "kitchen", n_points=120, width=48, height=32, backend="reference"
        )
        for ia, ib in zip(a.eval_targets, b.eval_targets):
            assert np.allclose(ia, ib, atol=TOL)


class TestRowSpansSubset:
    """``RowSpans.subset`` must keep span ordering and group offsets coherent.

    Previously only exercised indirectly through foveated blend bands; the
    batch path also relies on subset-produced spans concatenating cleanly.
    """

    @pytest.fixture(scope="class")
    def spans(self):
        from repro.splat.backends.segments import build_row_spans, build_segments

        model = random_scene(3, n=300)
        projected, assignment = prepare_view(model, camera())
        spans = build_row_spans(projected, build_segments(assignment))
        assert spans.num_spans > 0 and spans.num_groups > 10
        return spans

    @pytest.fixture(scope="class")
    def subset(self, spans):
        # Keep every other tile that actually carries spans.
        num_tiles = spans.seg.grid.num_tiles
        mask = np.zeros(num_tiles, dtype=bool)
        mask[np.unique(spans.span_tile)[::2]] = True
        sub, keep_spans = spans.subset(mask)
        assert 0 < sub.num_spans < spans.num_spans
        return mask, sub, keep_spans

    def test_span_ordering_preserved(self, spans, subset):
        mask, sub, keep_spans = subset
        # The kept spans are exactly the masked rows, in original order.
        assert np.array_equal(sub.span_pair, spans.span_pair[keep_spans])
        assert np.array_equal(sub.span_tile, spans.span_tile[keep_spans])
        assert np.array_equal(sub.span_y, spans.span_y[keep_spans])
        # Still sorted by (tile, row) with stable depth order inside groups.
        key = sub.span_tile * spans.seg.grid.tile_size + sub.span_y
        assert np.all(np.diff(key) >= 0)

    def test_group_offsets_consistent(self, spans, subset):
        mask, sub, _ = subset
        keep_groups = mask[spans.group_tile]
        # Group lengths survive; offsets are recomputed densely.
        assert np.array_equal(sub.groups.lens, spans.groups.lens[keep_groups])
        assert np.array_equal(
            sub.groups.starts, np.cumsum(sub.groups.lens) - sub.groups.lens
        )
        assert int(sub.groups.lens.sum()) == sub.num_spans
        # Group metadata rows align with the groups' first spans.
        assert np.array_equal(sub.group_tile, sub.span_tile[sub.groups.starts])
        assert np.array_equal(sub.group_y, sub.span_y[sub.groups.starts])
        assert np.array_equal(
            sub.group_has_tile_last, spans.group_has_tile_last[keep_groups]
        )

    def test_subset_concatenates_cleanly(self, spans, subset):
        from repro.splat.backends.segments import concat_spans

        mask, sub, _ = subset
        inverse, _ = spans.subset(~mask)
        batch = concat_spans([sub, inverse])
        assert batch.num_spans == spans.num_spans
        assert batch.num_groups == spans.num_groups
        # from_lengths over the concatenated group lens reproduces each
        # view's internal offsets, shifted by the view's span offset.
        for v, part in enumerate(batch.views):
            got = batch.groups.starts[batch.view_groups(v)]
            assert np.array_equal(got, part.groups.starts + batch.span_offsets[v])


class TestSceneEquivalenceAtScale:
    @pytest.mark.parametrize("backend", PACKED_BACKENDS)
    def test_generated_scene_256(self, backend):
        scene = generate_scene("garden", n_points=800)
        (train, _) = trace_cameras(
            "garden", n_train=1, n_eval=1, width=160, height=112
        )
        assert_render_equivalent(scene, train[0], packed_backend=backend)


class TestPooledSingleViewForward:
    """``forward`` routes through the pooled batch-of-one kernels; it must
    stay bit-identical to the historical unpooled pass (kept as
    ``forward_unpooled``, the oracle)."""

    @pytest.mark.parametrize("per_pixel_sort", [False, True])
    def test_bitwise_identical_to_unpooled(self, per_pixel_sort):
        model = random_scene(4, n=300)
        projected, assignment = prepare_view(model, camera(width=70, height=52))
        background = np.array([0.2, 0.4, 0.6])
        engine = get_backend("packed")
        pooled_img, pooled_dom = engine.forward(
            projected, assignment, model.num_points, background, True,
            per_pixel_sort,
        )
        plain_img, plain_dom = forward_unpooled(
            projected, assignment, model.num_points, background, True,
            per_pixel_sort,
        )
        assert np.array_equal(pooled_img, plain_img)
        assert np.array_equal(pooled_dom, plain_dom)

    def test_concurrent_renders_are_isolated(self):
        # The backend is a process-wide singleton and ``forward`` now runs
        # on its pooled arena; concurrent threads must not corrupt each
        # other's scans (the workspace is thread-local).
        import threading

        model = random_scene(6, n=300)
        projected, assignment = prepare_view(model, camera())
        engine = get_backend("packed")
        args = (projected, assignment, model.num_points, np.zeros(3), False, False)
        expected, _ = engine.forward(*args)
        failures = []

        def worker():
            for _ in range(10):
                image, _ = engine.forward(*args)
                if not np.array_equal(image, expected):
                    failures.append("mismatch")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures

    def test_repeated_renders_reuse_workspace(self):
        model = random_scene(5)
        projected, assignment = prepare_view(model, camera())
        engine = get_backend("packed")
        args = (projected, assignment, model.num_points, np.zeros(3), False, False)
        first, _ = engine.forward(*args)
        slots = dict(engine._ws._slots)
        again, _ = engine.forward(*args)
        # Same warm slots, same result: the pooled arena is actually shared.
        assert slots and all(engine._ws._slots[k] is v for k, v in slots.items())
        assert np.array_equal(first, again)


class TestBackendRegistry:
    def test_builtin_entries(self):
        assert {i.name for i in backend_registry()} >= {
            "packed", "packed-xp", "packed-tiled", "reference"
        }
        packed = backend_info("packed")
        assert packed.has_forward_batch and packed.device == "cpu"
        assert backend_info("packed-xp").device == "xp"
        assert backend_info("reference").has_forward_batch
        tiled = backend_info("packed-tiled")
        assert tiled.device == "cpu"
        assert tiled.has_forward_batch and tiled.has_foveated_batch

    def test_unknown_backend_info_raises(self):
        with pytest.raises(ValueError, match="unknown rasterization backend"):
            backend_info("does-not-exist")

    def test_describe_lists_everything(self):
        table = describe_backends()
        for name in available_backends():
            assert name in table
        assert "numpy" in table  # array namespaces advertised too

    def test_supports_forward_batch_flags(self):
        assert supports_forward_batch(get_backend("packed"))
        assert supports_forward_batch(get_backend("packed-xp"))
        assert supports_forward_batch(get_backend("reference"))

    def test_supports_forward_batch_probes_unregistered(self):
        class NoBatch:
            name = "custom-nobatch"

        class WithBatch:
            name = "custom-batch"

            def forward_batch(self, *a):  # pragma: no cover - probe target
                return []

        assert not supports_forward_batch(NoBatch())
        assert supports_forward_batch(WithBatch())

    def test_flagless_registration_probes_instance(self):
        # PR 2 semantics: a legacy two-argument registration whose engine
        # implements forward_batch must keep its batched dispatch.
        import repro.splat.backends as backends

        class LegacyBatched:
            name = "test-legacy-batched"

            def forward_batch(self, *a):  # pragma: no cover - probe target
                return []

        name = LegacyBatched.name
        try:
            register_backend(name, LegacyBatched)
            assert backend_info(name).has_forward_batch is None
            assert supports_forward_batch(get_backend(name))
        finally:
            backends._REGISTRY.pop(name, None)
            backends._instances.pop(name, None)

    def test_register_with_capabilities(self):
        import repro.splat.backends as backends

        name = "test-registry-entry"
        try:
            register_backend(
                name, lambda: get_backend("reference"),
                description="test entry", device="tpu", has_forward_batch=False,
                experimental=True,
            )
            info = backend_info(name)
            assert info.device == "tpu" and info.experimental
            assert name in available_backends()
            assert name in describe_backends()
        finally:
            backends._REGISTRY.pop(name, None)
            backends._instances.pop(name, None)


class TestSpanBudgetHardening:
    """``REPRO_BATCH_SPAN_BUDGET`` must never crash or zero out the render
    path: bad values warn and fall back to the default."""

    @pytest.mark.parametrize("raw", ["banana", "12.5", "0", "-5", "  "])
    def test_bad_values_fall_back(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BATCH_SPAN_BUDGET", raw)
        if raw.strip():
            with pytest.warns(RuntimeWarning, match="REPRO_BATCH_SPAN_BUDGET"):
                assert span_chunk_budget() == DEFAULT_SPAN_CHUNK_BUDGET
        else:
            assert span_chunk_budget() == DEFAULT_SPAN_CHUNK_BUDGET

    def test_valid_value_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SPAN_BUDGET", "4096")
        assert span_chunk_budget() == 4096
        monkeypatch.delenv("REPRO_BATCH_SPAN_BUDGET")
        assert span_chunk_budget() == DEFAULT_SPAN_CHUNK_BUDGET

    def test_render_batch_survives_bad_budget(self, monkeypatch):
        from repro.splat import render_batch

        model = random_scene(2)
        cams = [camera(), camera(width=70, height=52)]
        config = RenderConfig(backend="packed")  # the budget is packed-only
        clean = render_batch(model, cams, config)
        monkeypatch.setenv("REPRO_BATCH_SPAN_BUDGET", "not-a-number")
        with pytest.warns(RuntimeWarning, match="non-integer"):
            bad = render_batch(model, cams, config)
        for a, b in zip(clean, bad):
            assert np.array_equal(a.image, b.image)


class TestSplitSpans:
    """Group-aligned span splitting, the tiled backend's substrate."""

    def _spans(self, seed=0, n=200, width=96, height=64):
        model = random_scene(seed, n)
        projected, assignment = prepare_view(model, camera(width, height))
        return build_row_spans(projected, build_segments(assignment))

    def test_within_budget_is_identity(self):
        spans = self._spans()
        assert split_spans(spans, spans.num_spans) == [spans]

    @pytest.mark.parametrize("budget", [1, 7, 97, 1024])
    def test_pieces_cover_everything_in_order(self, budget):
        spans = self._spans()
        pieces = split_spans(spans, budget)
        assert np.array_equal(
            np.concatenate([p.span_pair for p in pieces]), spans.span_pair
        )
        assert np.array_equal(
            np.concatenate([p.group_tile for p in pieces]), spans.group_tile
        )
        assert np.array_equal(
            np.concatenate([p.groups.lens for p in pieces]), spans.groups.lens
        )
        assert sum(p.num_spans for p in pieces) == spans.num_spans

    @pytest.mark.parametrize("budget", [7, 97])
    def test_budget_respected_or_single_oversized_group(self, budget):
        spans = self._spans()
        for piece in split_spans(spans, budget):
            assert piece.num_spans <= budget or piece.num_groups == 1
            # group-aligned: the piece's spans are exactly its groups'
            assert int(piece.groups.lens.sum()) == piece.num_spans

    def test_pieces_share_pair_tables(self):
        spans = self._spans()
        for piece in split_spans(spans, 97):
            # The full-table seg reference is what lets the tiled backend
            # gather pair tables once and index them from every piece.
            assert piece.seg is spans.seg
            assert piece.span_pair.max() < spans.seg.num_pairs

    def test_invalid_budget_raises(self):
        with pytest.raises(ValueError, match="max_spans"):
            split_spans(self._spans(), 0)


class TestTiledBackend:
    """``packed-tiled``: sub-chunk scans must be invisible in the output."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_equivalence_with_forced_tiny_tiles(self, monkeypatch, seed):
        # A 97-span budget forces many sub-chunks even on test frames, so
        # the tiled path (not the small-view fallthrough) is what's pinned.
        monkeypatch.setenv(TILE_BUDGET_ENV, "97")
        assert_render_equivalent(
            random_scene(seed), camera(), packed_backend="packed-tiled"
        )

    def test_per_pixel_sort_with_forced_tiny_tiles(self, monkeypatch):
        monkeypatch.setenv(TILE_BUDGET_ENV, "97")
        assert_render_equivalent(
            random_scene(1), camera(), packed_backend="packed-tiled",
            per_pixel_sort=True,
        )

    def test_background_with_forced_tiny_tiles(self, monkeypatch):
        monkeypatch.setenv(TILE_BUDGET_ENV, "61")
        assert_render_equivalent(
            random_scene(3), camera(width=70, height=52),
            packed_backend="packed-tiled",
            background=(0.3, 0.1, 0.8),
        )

    def test_constructor_budget_beats_env(self, monkeypatch):
        monkeypatch.setenv(TILE_BUDGET_ENV, "131072")
        model = random_scene(0)
        cam = camera()
        projected, assignment = prepare_view(model, cam)
        background = np.zeros(3)
        fine = TiledPackedBackend(tile_spans=97)
        coarse = TiledPackedBackend()  # env: effectively untiled here
        img_fine = fine.forward(
            projected, assignment, model.num_points, background, False, False
        )[0]
        img_coarse = coarse.forward(
            projected, assignment, model.num_points, background, False, False
        )[0]
        assert np.allclose(img_fine, img_coarse, atol=TOL)

    def test_untiled_views_bitwise_match_packed(self):
        # Views under the tile budget ride the plain packed batch path and
        # must be bit-identical to the packed backend, not just close.
        model = random_scene(2)
        cam = camera()
        pk = render(model, cam, RenderConfig(backend="packed"))
        td = render(
            model, cam,
            RenderConfig(backend="packed-tiled"),
        )
        assert np.array_equal(pk.image, td.image)

    def test_render_batch_with_forced_tiny_tiles(self, monkeypatch):
        from repro.splat import render_batch

        model = random_scene(4)
        cams = [camera(), camera(width=70, height=52)]
        clean = render_batch(model, cams, RenderConfig(backend="packed"))
        monkeypatch.setenv(TILE_BUDGET_ENV, "97")
        tiled = render_batch(model, cams, RenderConfig(backend="packed-tiled"))
        for a, b in zip(clean, tiled):
            assert np.allclose(a.image, b.image, atol=TOL)

    def test_gradients_unaffected(self, monkeypatch):
        # The backward pass is inherited untiled; pin that routing grads
        # through the tiled backend name changes nothing.
        monkeypatch.setenv(TILE_BUDGET_ENV, "97")
        model = random_scene(1)
        projected, assignment = prepare_view(model, camera())
        grad_image = np.random.default_rng(0).normal(size=(64, 96, 3))
        ref = rasterize_backward(
            projected, assignment, model.num_points, grad_image=grad_image,
            backend="packed",
        )
        td = rasterize_backward(
            projected, assignment, model.num_points, grad_image=grad_image,
            backend="packed-tiled",
        )
        for field in ("color", "opacity", "log_scale"):
            assert np.allclose(
                getattr(ref, field), getattr(td, field), atol=TOL
            ), field

    def test_tile_budget_env_hardening(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_PROFILE", "off")
        monkeypatch.setenv(TILE_BUDGET_ENV, "banana")
        with pytest.warns(RuntimeWarning, match=TILE_BUDGET_ENV):
            assert tile_span_budget() >= 1
        monkeypatch.setenv(TILE_BUDGET_ENV, "4096")
        assert tile_span_budget() == 4096
        assert tile_span_budget(123) == 123
        with pytest.raises(ValueError):
            tile_span_budget(0)
