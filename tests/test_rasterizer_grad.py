"""Analytic rasterizer gradients vs finite differences.

The fine-tuning loop (scale decay, multi-version training) relies on these
gradients being correct; each test perturbs one parameter of one point and
compares the analytic directional derivative with a central difference.
"""

import numpy as np
import pytest

from repro.splat.gaussians import GaussianModel
from repro.splat.rasterizer import rasterize, rasterize_backward
from repro.splat.renderer import RenderConfig, prepare_view


def build_model(rng, n=6):
    positions = np.column_stack(
        [rng.uniform(-0.8, 0.8, n), rng.uniform(-0.6, 0.6, n), rng.uniform(-0.5, 0.5, n)]
    )
    return GaussianModel(
        positions=positions,
        log_scales=np.log(rng.uniform(0.15, 0.4, size=(n, 3))),
        rotations=np.tile([1.0, 0, 0, 0], (n, 1)),
        opacity_logits=rng.uniform(-0.5, 1.5, n),
        sh=rng.normal(scale=0.3, size=(n, 1, 3)),
    )


def loss_and_grads(model, camera):
    """Simple quadratic loss ½‖img‖²: grad_image = img."""
    projected, assignment = prepare_view(model, camera)
    image, _ = rasterize(projected, assignment, model.num_points, collect_stats=False)
    loss = 0.5 * float(np.sum(image**2))
    grads = rasterize_backward(
        projected, assignment, model.num_points, grad_image=image
    )
    return loss, grads


def numeric_grad(model, camera, mutate, eps=1e-5):
    plus = model.copy()
    mutate(plus, +eps)
    minus = model.copy()
    mutate(minus, -eps)
    lp, _ = loss_and_grads(plus, camera)
    lm, _ = loss_and_grads(minus, camera)
    return (lp - lm) / (2 * eps)


@pytest.fixture()
def setup(front_camera):
    rng = np.random.default_rng(42)
    model = build_model(rng)
    return model, front_camera


class TestGradients:
    def test_color_gradient(self, setup):
        model, camera = setup
        _, grads = loss_and_grads(model, camera)
        # Perturb the rendered colour of point 0 via a colour override is
        # impractical; instead perturb the DC coefficient and account for
        # the SH chain factor analytically in the reference.
        from repro.splat.sh import SH_C0

        for channel in range(3):
            def mutate(m, eps, ch=channel):
                m.sh[0, 0, ch] += eps

            num = numeric_grad(model, camera, mutate)
            ana = grads.color[0, channel] * SH_C0
            assert num == pytest.approx(ana, rel=0.03, abs=1e-7)

    def test_opacity_gradient(self, setup):
        model, camera = setup
        _, grads = loss_and_grads(model, camera)
        opac = model.opacities

        for point in range(3):
            def mutate(m, eps, i=point):
                m.opacity_logits[i] += eps

            num = numeric_grad(model, camera, mutate)
            ana = grads.opacity[point] * opac[point] * (1 - opac[point])
            assert num == pytest.approx(ana, rel=0.05, abs=1e-6)

    def test_log_scale_gradient_sign_and_magnitude(self, setup):
        model, camera = setup
        _, grads = loss_and_grads(model, camera)

        # The analytic scale gradient ignores the constant screen-space
        # dilation and the radius/tiling dependency, so compare with a
        # looser tolerance.
        for point in range(3):
            def mutate(m, eps, i=point):
                m.log_scales[i, :] += eps

            num = numeric_grad(model, camera, mutate, eps=1e-4)
            ana = grads.log_scale[point]
            if abs(num) < 1e-7 and abs(ana) < 1e-7:
                continue
            assert np.sign(num) == np.sign(ana)
            assert abs(ana) == pytest.approx(abs(num), rel=0.5)

    def test_gradients_zero_for_invisible_points(self, setup):
        model, camera = setup
        model = model.copy()
        model.positions[5, 2] = -100.0  # behind the camera
        _, grads = loss_and_grads(model, camera)
        assert grads.color[5].sum() == 0.0
        assert grads.opacity[5] == 0.0
        assert grads.log_scale[5] == 0.0

    def test_gradient_shapes(self, setup):
        model, camera = setup
        _, grads = loss_and_grads(model, camera)
        assert grads.color.shape == (model.num_points, 3)
        assert grads.opacity.shape == (model.num_points,)
        assert grads.log_scale.shape == (model.num_points,)
