"""Rasterization: compositing math, early termination, statistics."""

import numpy as np
import pytest

from repro.splat.gaussians import GaussianModel
from repro.splat.rasterizer import (
    TRANSMITTANCE_EPS,
    composite,
    rasterize,
    splat_alphas,
    tile_pixel_centers,
)
from repro.splat.renderer import RenderConfig, prepare_view, render


class TestComposite:
    def test_matches_manual_volume_rendering(self):
        # Three splats over two pixels, hand-computed Eqn 1a.
        alphas = np.array([[0.5, 0.2], [0.25, 0.0], [0.9, 0.4]])
        colors = np.array([[1.0, 0, 0], [0, 1.0, 0], [0, 0, 1.0]])
        bg = np.zeros(3)
        out, weights, final_t = composite(alphas, colors, bg)
        for p in range(2):
            t = 1.0
            expected = np.zeros(3)
            for i in range(3):
                expected += t * alphas[i, p] * colors[i]
                t *= 1.0 - alphas[i, p]
            assert np.allclose(out[p], expected)
            assert final_t[p] == pytest.approx(t)

    def test_weights_sum_at_most_one(self):
        rng = np.random.default_rng(0)
        alphas = rng.uniform(0, 0.9, size=(30, 17))
        colors = rng.uniform(size=(30, 3))
        _, weights, final_t = composite(alphas, colors, np.zeros(3))
        totals = weights.sum(axis=0) + final_t
        assert np.all(totals <= 1.0 + 1e-9)

    def test_empty_splats_return_background(self):
        bg = np.array([0.3, 0.6, 0.9])
        out, weights, final_t = composite(np.zeros((0, 5)), np.zeros((0, 3)), bg)
        assert np.allclose(out, bg)
        assert np.allclose(final_t, 1.0)

    def test_opaque_front_splat_hides_rest(self):
        alphas = np.array([[0.999], [0.8]])
        colors = np.array([[1.0, 0, 0], [0, 1.0, 0]])
        out, weights, _ = composite(alphas, colors, np.zeros(3))
        assert out[0, 0] > 0.99
        assert out[0, 1] < 0.01

    def test_early_termination_zeroes_tail(self):
        # 10 near-opaque splats: transmittance dies after the first few.
        alphas = np.full((10, 1), 0.99)
        colors = np.ones((10, 3))
        _, weights, final_t = composite(alphas, colors, np.zeros(3))
        # Find the first splat whose incoming transmittance fell below eps.
        t = np.cumprod(1.0 - alphas[:, 0])
        dead = np.nonzero(t < TRANSMITTANCE_EPS)[0]
        assert dead.size > 0
        assert np.all(weights[dead[0] + 1 :, 0] == 0.0)
        assert final_t[0] == 0.0


class TestSplatAlphas:
    def test_alpha_peaks_at_center(self, prepared_view):
        projected, assignment = prepared_view
        tile_id = int(np.argmax(assignment.intersections_per_tile()))
        idx = assignment.splats_in_tile(tile_id)[:8]
        centers = projected.means2d[idx]
        alphas, quad = splat_alphas(projected, idx, centers)
        # Each splat's alpha at its own centre equals its opacity.
        own = np.diag(alphas[:, : idx.size])
        mask = own > 0  # unless below the 1/255 cut
        assert np.allclose(own[mask], projected.opacities[idx][mask], atol=1e-9)

    def test_quad_nonnegative(self, prepared_view):
        projected, assignment = prepared_view
        tile_id = int(np.argmax(assignment.intersections_per_tile()))
        idx = assignment.splats_in_tile(tile_id)
        pixels = tile_pixel_centers(assignment.grid, tile_id)
        _, quad = splat_alphas(projected, idx, pixels)
        assert np.all(quad >= 0)

    def test_small_alphas_zeroed(self, prepared_view):
        projected, assignment = prepared_view
        tile_id = int(np.argmax(assignment.intersections_per_tile()))
        idx = assignment.splats_in_tile(tile_id)
        pixels = tile_pixel_centers(assignment.grid, tile_id)
        alphas, _ = splat_alphas(projected, idx, pixels)
        nonzero = alphas[alphas > 0]
        assert nonzero.size == 0 or nonzero.min() >= 1.0 / 255.0


class TestRasterize:
    def test_image_shape_and_range(self, rendered):
        image = rendered.image
        assert image.ndim == 3 and image.shape[2] == 3
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_background_fills_empty_regions(self, front_camera):
        model = GaussianModel(
            positions=np.array([[0.0, 0.0, 0.0]]),
            log_scales=np.log(np.full((1, 3), 0.05)),
            rotations=np.array([[1.0, 0, 0, 0]]),
            opacity_logits=np.array([3.0]),
            sh=np.zeros((1, 1, 3)),
        )
        config = RenderConfig(background=(0.25, 0.5, 0.75))
        result = render(model, front_camera, config)
        corner = result.image[0, 0]
        assert np.allclose(corner, [0.25, 0.5, 0.75], atol=1e-6)

    def test_stats_dominated_pixels_bounded(self, rendered):
        stats = rendered.stats
        n_pixels = rendered.image.shape[0] * rendered.image.shape[1]
        assert stats.dominated_pixels.sum() <= n_pixels
        assert np.all(stats.dominated_pixels >= 0)

    def test_stats_tiles_per_point_matches_assignment(self, rendered):
        stats = rendered.stats
        assert stats.tiles_per_point.sum() == rendered.assignment.num_intersections

    def test_collect_stats_off(self, small_scene, train_cameras):
        result = render(small_scene, train_cameras[0], RenderConfig(collect_stats=False))
        assert result.stats is None

    def test_deterministic(self, small_scene, train_cameras):
        a = render(small_scene, train_cameras[0]).image
        b = render(small_scene, train_cameras[0]).image
        assert np.array_equal(a, b)


class TestEarlyTerminationTransmittance:
    """Regression for the collapsed ``final_trans`` expression: pixels whose
    transmittance crossed the early-termination threshold contribute nothing
    to the background; pixels that never crossed keep the full product."""

    def test_terminated_pixel_zero_surviving_pixel_product(self):
        # Column 0 terminates (near-opaque stack); column 1 stays alive.
        alphas = np.column_stack([np.full(10, 0.99), np.full(10, 0.05)])
        colors = np.zeros((10, 3))
        _, _, final_t = composite(alphas, colors, np.ones(3))
        assert final_t[0] == 0.0
        assert final_t[1] == pytest.approx((1.0 - 0.05) ** 10)

    def test_terminated_pixel_ignores_background(self):
        alphas = np.full((10, 1), 0.99)
        colors = np.zeros((10, 3))
        out, _, final_t = composite(alphas, colors, np.ones(3))
        # Leftover transmittance below the threshold is treated as zero, so
        # the (white) background must not leak into the (black) pixel.
        assert final_t[0] == 0.0
        assert np.all(out[0] < 0.2)

    def test_alive_pixel_final_trans_is_running_product(self):
        rng = np.random.default_rng(3)
        alphas = rng.uniform(0.0, 0.2, size=(12, 9))
        _, _, final_t = composite(alphas, np.zeros((12, 3)), np.zeros(3))
        assert np.allclose(final_t, np.prod(1.0 - alphas, axis=0))


class TestPerPixelSort:
    def test_runs_and_close_to_global_sort(self, small_scene, train_cameras):
        plain = render(small_scene, train_cameras[0]).image
        stp = render(small_scene, train_cameras[0], RenderConfig(per_pixel_sort=True)).image
        # Ordering differences only affect overlapping splats; images agree
        # closely but not necessarily exactly.
        assert np.mean(np.abs(plain - stp)) < 0.05

    def test_vectorized_matches_per_column_loop(self, small_scene, train_cameras):
        """The take_along_axis compositing must reproduce the old per-pixel
        Python loop (composite one column at a time with its own colour
        ordering) on a real view."""
        from repro.splat.rasterizer import _per_pixel_reorder, composite_per_pixel

        projected, assignment = prepare_view(small_scene, train_cameras[0])
        grid = assignment.grid
        background = np.array([0.1, 0.2, 0.3])
        tiles = np.argsort(-assignment.intersections_per_tile())[:4]
        for tile_id in tiles:
            splat_idx = assignment.splats_in_tile(int(tile_id))
            if splat_idx.size == 0:
                continue
            pixels = tile_pixel_centers(grid, int(tile_id))
            alphas, _ = splat_alphas(projected, splat_idx, pixels)
            alphas, order = _per_pixel_reorder(projected, splat_idx, pixels, alphas)
            colors = projected.colors[splat_idx]

            # New vectorized path.
            pc_new, w_sorted, _ = composite_per_pixel(alphas, colors[order], background)
            w_new = np.zeros_like(w_sorted)
            np.put_along_axis(w_new, order, w_sorted, axis=0)

            # Old loop (the seed implementation), column by column.
            pc_old = np.empty((pixels.shape[0], 3))
            w_old = np.zeros((splat_idx.size, pixels.shape[0]))
            for p in range(pixels.shape[0]):
                col_alphas = alphas[:, p : p + 1]
                col_colors = colors[order[:, p]]
                pc, w, _ = composite(col_alphas, col_colors, background)
                pc_old[p] = pc[0]
                w_old[order[:, p], p] = w[:, 0]

            assert np.allclose(pc_new, pc_old, atol=1e-12)
            assert np.allclose(w_new, w_old, atol=1e-12)
