"""The seven comparison baselines: structure, ordering, quality ladder."""

import numpy as np
import pytest

from repro.baselines import (
    ALL_BASELINES,
    FIG3_BASELINES,
    build_baseline,
    build_baselines,
    lightgs_scores,
)
from repro.hvs.metrics import psnr
from repro.splat import render


@pytest.fixture(scope="module")
def all_baselines(small_scene, train_cameras):
    return build_baselines(small_scene, train_cameras, seed=0)


class TestRegistry:
    def test_all_seven_built(self, all_baselines):
        assert set(all_baselines) == set(ALL_BASELINES)

    def test_fig3_subset(self):
        assert set(FIG3_BASELINES) <= set(ALL_BASELINES)

    def test_unknown_name_rejected(self, small_scene, train_cameras):
        with pytest.raises(KeyError):
            build_baseline("GaussianPro", small_scene, train_cameras)

    def test_names_match(self, all_baselines):
        for name, baseline in all_baselines.items():
            assert baseline.name == name


class TestDenseModels:
    def test_dense_models_bigger_than_scene(self, all_baselines, small_scene):
        for name in ("3DGS", "Mini-Splatting-D", "Mip-Splatting", "StopThePop"):
            assert all_baselines[name].model.num_points > small_scene.num_points
            assert all_baselines[name].dense

    def test_3dgs_has_flicker(self, all_baselines):
        assert all_baselines["3DGS"].flicker_fraction > all_baselines[
            "Mini-Splatting-D"
        ].flicker_fraction

    def test_mip_splatting_uses_smoothing(self, all_baselines):
        assert all_baselines["Mip-Splatting"].render_config.smoothing_3d > 0

    def test_stopthepop_uses_per_pixel_sort(self, all_baselines):
        assert all_baselines["StopThePop"].render_config.per_pixel_sort

    def test_msd_quality_beats_3dgs(
        self, all_baselines, small_scene, train_cameras, train_targets
    ):
        """Mini-Splatting-D is the paper's quality reference."""

        def quality(b):
            values = [
                psnr(t, render(b.model, c, b.render_config).image)
                for c, t in zip(train_cameras[:2], train_targets[:2])
            ]
            return np.mean(values)

        assert quality(all_baselines["Mini-Splatting-D"]) > quality(all_baselines["3DGS"])


class TestPrunedModels:
    def test_pruned_smaller_than_parents(self, all_baselines):
        assert (
            all_baselines["LightGS"].model.num_points
            < all_baselines["3DGS"].model.num_points
        )
        assert (
            all_baselines["CompactGS"].model.num_points
            < all_baselines["3DGS"].model.num_points
        )
        assert (
            all_baselines["Mini-Splatting"].model.num_points
            < all_baselines["Mini-Splatting-D"].model.num_points
        )

    def test_pruned_flag(self, all_baselines):
        for name in ("LightGS", "CompactGS", "Mini-Splatting"):
            assert not all_baselines[name].dense

    def test_pruned_models_render_faster(self, all_baselines, train_cameras):
        """Fig 3's point: pruning reduces intersections (hence latency)."""
        dense_ints = render(
            all_baselines["3DGS"].model, train_cameras[0]
        ).stats.total_intersections
        pruned_ints = render(
            all_baselines["LightGS"].model, train_cameras[0]
        ).stats.total_intersections
        assert pruned_ints < dense_ints

    def test_lightgs_scores_positive_for_used_points(
        self, all_baselines, train_cameras
    ):
        scores = lightgs_scores(all_baselines["3DGS"].model, train_cameras[:2])
        assert scores.shape == (all_baselines["3DGS"].model.num_points,)
        assert (scores > 0).any()

    def test_compactgs_keeps_high_opacity(self, all_baselines):
        kept_opacity = all_baselines["CompactGS"].model.opacities.min()
        parent_opacity = all_baselines["3DGS"].model.opacities.min()
        assert kept_opacity > parent_opacity

    def test_determinism(self, small_scene, train_cameras):
        a = build_baseline("Mini-Splatting", small_scene, train_cameras, seed=5)
        b = build_baseline("Mini-Splatting", small_scene, train_cameras, seed=5)
        assert np.array_equal(a.model.positions, b.model.positions)
