"""End-to-end renderer behaviour and configuration options."""

import numpy as np

from repro.splat import RenderConfig, prepare_view, render, render_views


class TestRender:
    def test_result_fields_consistent(self, rendered, small_scene):
        assert rendered.stats.num_points == small_scene.num_points
        assert rendered.stats.num_projected == rendered.projected.num_visible

    def test_tile_size_option(self, small_scene, train_cameras):
        r8 = render(small_scene, train_cameras[0], RenderConfig(tile_size=8))
        r16 = render(small_scene, train_cameras[0], RenderConfig(tile_size=16))
        assert r8.assignment.grid.num_tiles > r16.assignment.grid.num_tiles
        # Same scene, same view: images nearly identical across tile sizes.
        assert np.mean(np.abs(r8.image - r16.image)) < 1e-6

    def test_smoothing_changes_workload(self, small_scene, train_cameras):
        plain = render(small_scene, train_cameras[0])
        mip = render(small_scene, train_cameras[0], RenderConfig(smoothing_3d=2.0))
        assert mip.stats.total_intersections >= plain.stats.total_intersections

    def test_render_views_batches(self, small_scene, train_cameras):
        results = render_views(small_scene, train_cameras[:2])
        assert len(results) == 2
        assert not np.array_equal(results[0].image, results[1].image)

    def test_prepare_view_matches_render(self, small_scene, train_cameras):
        projected, assignment = prepare_view(small_scene, train_cameras[0])
        result = render(small_scene, train_cameras[0])
        assert projected.num_visible == result.projected.num_visible
        assert assignment.num_intersections == result.assignment.num_intersections

    def test_views_see_different_workloads(self, small_scene, train_cameras):
        ints = [
            render(small_scene, c).stats.total_intersections for c in train_cameras[:3]
        ]
        assert len(set(ints)) > 1
