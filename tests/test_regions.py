"""Foveation quality regions: level maps, blending bands, tile assignment."""

import numpy as np
import pytest

from repro.foveation.regions import (
    PAPER_REGION_BOUNDARIES_DEG,
    RegionLayout,
    compute_region_maps,
    region_masks,
    region_pixel_fractions,
)
from repro.splat.tiling import TileGrid


@pytest.fixture()
def layout():
    return RegionLayout(boundaries_deg=(0.0, 12.0, 20.0, 28.0), blend_band_deg=1.5)


class TestLayout:
    def test_paper_boundaries(self):
        assert PAPER_REGION_BOUNDARIES_DEG == (0.0, 18.0, 27.0, 33.0)
        assert RegionLayout().num_levels == 4

    def test_level_of_scalar_bands(self, layout):
        ecc = np.array([0.0, 5.0, 12.0, 19.9, 20.0, 27.9, 28.0, 60.0])
        levels = layout.level_of(ecc)
        assert list(levels) == [1, 1, 2, 2, 3, 3, 4, 4]

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            RegionLayout(boundaries_deg=(5.0, 10.0))

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            RegionLayout(boundaries_deg=(0.0, 10.0, 10.0))

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            RegionLayout(blend_band_deg=-1.0)

    def test_blend_weights_ramp(self, layout):
        ecc = np.array([10.5, 12.0, 13.5])  # across the first boundary band
        needs, weight = layout.blend_weights(ecc)
        assert list(needs) == [True, True, False]
        assert weight[0] == pytest.approx(0.0)
        assert weight[1] == pytest.approx(0.5)

    def test_zero_band_disables_blending(self):
        layout = RegionLayout(boundaries_deg=(0.0, 10.0), blend_band_deg=0.0)
        needs, weight = layout.blend_weights(np.array([9.9, 10.0, 10.1]))
        assert not needs.any()


class TestRegionMaps:
    @pytest.fixture()
    def maps(self, front_camera, layout):
        grid = TileGrid(front_camera.width, front_camera.height)
        return compute_region_maps(front_camera, grid, layout)

    def test_pixel_levels_radially_monotone(self, maps, front_camera):
        cy, cx = front_camera.height // 2, front_camera.width // 2
        assert maps.pixel_level[cy, cx] == 1
        assert maps.pixel_level[0, 0] >= maps.pixel_level[cy, cx]

    def test_tile_level_matches_center_pixel(self, maps, front_camera, layout):
        grid = TileGrid(front_camera.width, front_camera.height)
        centers = grid.tile_centers()
        for tid in range(grid.num_tiles):
            cx_, cy_ = int(centers[tid, 0]), int(centers[tid, 1])
            assert maps.tile_level[tid] == maps.pixel_level[cy_, cx_]

    def test_second_level_adjacent(self, maps):
        for tid in range(maps.tile_level.shape[0]):
            second = maps.tile_second_level[tid]
            if second:
                assert abs(second - maps.tile_level[tid]) == 1

    def test_band_level_only_on_blend_pixels(self, maps):
        assert np.all((maps.band_level > 0) == maps.needs_blend)

    def test_blend_fraction_reasonable(self, maps):
        # The paper reports ~25% of pixels blended; at our scale it should
        # at least be a minority but non-trivial fraction.
        assert 0.0 < maps.blend_fraction < 0.6


class TestRegionMasks:
    def test_masks_partition_image(self, front_camera, layout):
        masks = region_masks(front_camera, layout)
        total = sum(m.astype(int) for m in masks)
        assert np.all(total == 1)

    def test_fractions_sum_to_one(self, front_camera, layout):
        fractions = region_pixel_fractions(front_camera, layout)
        assert fractions.sum() == pytest.approx(1.0)
        assert fractions[0] > 0  # fovea non-empty

    def test_gaze_moves_fovea(self, front_camera, layout):
        fractions_center = region_pixel_fractions(front_camera, layout)
        fractions_corner = region_pixel_fractions(front_camera, layout, gaze=(0.0, 0.0))
        assert fractions_center[0] != pytest.approx(fractions_corner[0])
