"""Computational Efficiency metric (Eqn 3) and its aggregation."""

import numpy as np
import pytest

from repro.core.ce import compute_ce, frame_ce
from repro.splat import render


class TestFrameCE:
    def test_unused_points_zero(self):
        ce = frame_ce(np.array([0, 5, 0]), np.array([0, 10, 3]))
        assert ce[0] == 0.0
        assert ce[2] == 0.0

    def test_ratio(self):
        ce = frame_ce(np.array([8]), np.array([4]))
        assert ce[0] == pytest.approx(2.0)

    def test_high_cost_low_value_penalized(self):
        # Same contribution, different tile cost → lower CE for costly point.
        ce = frame_ce(np.array([10, 10]), np.array([2, 20]))
        assert ce[0] > ce[1]


class TestComputeCE:
    def test_shapes_and_nonnegative(self, small_scene, train_cameras):
        result = compute_ce(small_scene, train_cameras)
        assert result.ce.shape == (small_scene.num_points,)
        assert np.all(result.ce >= 0)

    def test_max_dominates_mean(self, small_scene, train_cameras):
        max_agg = compute_ce(small_scene, train_cameras, aggregate="max")
        mean_agg = compute_ce(small_scene, train_cameras, aggregate="mean")
        assert np.all(max_agg.ce >= mean_agg.ce - 1e-12)

    def test_out_of_frustum_points_get_zero(self, small_scene, train_cameras):
        model = small_scene.copy()
        # Send the first 5 points far underground, outside every view.
        model.positions[:5] = [0.0, 1e5, 0.0]
        result = compute_ce(model, train_cameras)
        assert np.all(result.ce[:5] == 0.0)

    def test_requires_cameras(self, small_scene):
        with pytest.raises(ValueError):
            compute_ce(small_scene, [])

    def test_invalid_aggregate_rejected(self, small_scene, train_cameras):
        with pytest.raises(ValueError):
            compute_ce(small_scene, train_cameras[:1], aggregate="median")

    def test_intersections_tracked(self, small_scene, train_cameras):
        result = compute_ce(small_scene, train_cameras[:1])
        rendered = render(small_scene, train_cameras[0])
        assert result.total_intersections == pytest.approx(
            rendered.stats.total_intersections
        )

    def test_dominant_points_have_high_ce(self, small_scene, train_cameras):
        result = compute_ce(small_scene, train_cameras)
        # Points that dominate at least one pixel somewhere must beat the
        # never-dominant points on average.
        dominant = result.max_val > 0
        assert dominant.any() and (~dominant).any()
        assert result.ce[dominant].mean() > result.ce[~dominant].mean()
