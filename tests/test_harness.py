"""The high-level experiment harness."""

import numpy as np
import pytest

import repro
from repro.baselines import build_baselines
from repro.harness import quick_l1_model


@pytest.fixture(scope="module")
def setup():
    return repro.setup_trace(
        "bonsai", n_points=500, width=96, height=64, n_train=3, n_eval=2
    )


class TestSetupTrace:
    def test_fields(self, setup):
        assert setup.scene.num_points > 0
        assert len(setup.train_cameras) == 3
        assert len(setup.eval_cameras) == 2
        assert len(setup.train_targets) == 3
        assert setup.train_targets[0].shape == (64, 96, 3)

    def test_targets_are_ground_truth(self, setup):
        from repro.splat import render

        img = render(setup.scene, setup.train_cameras[0]).image
        assert np.array_equal(img, setup.train_targets[0])


class TestMeasurement:
    @pytest.fixture(scope="class")
    def dense(self, setup):
        return build_baselines(setup.scene, setup.train_cameras, names=("3DGS",))["3DGS"]

    def test_measure_baseline(self, setup, dense):
        m = repro.measure_baseline(dense, setup)
        assert m.fps > 0
        assert np.isfinite(m.psnr)
        assert -1 <= m.ssim <= 1
        assert m.lpips >= 0

    def test_quick_l1_prunes(self, setup, dense):
        l1 = quick_l1_model(setup, dense, keep_fraction=0.4)
        assert l1.num_points == int(dense.model.num_points * 0.4)

    def test_measure_baseline_reuses_prepared_views(self, setup, dense):
        # Repeated measurements of one (model, pose) set hit the view cache
        # instead of re-projecting — the bench_fig03 repeat pattern.
        cache = repro.splat.ViewCache()
        first = repro.measure_baseline(dense, setup, view_cache=cache)
        assert cache.misses == len(setup.eval_cameras)
        assert cache.hits == 0
        second = repro.measure_baseline(dense, setup, view_cache=cache)
        assert cache.hits == len(setup.eval_cameras)
        assert cache.misses == len(setup.eval_cameras)
        assert second.fps == first.fps
        assert second.psnr == first.psnr

    def test_measure_foveated_reuses_prepared_views(self, setup, dense):
        from repro.foveation import uniform_foveated_model
        from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT

        l1 = quick_l1_model(setup, dense, keep_fraction=0.4)
        fmodel = uniform_foveated_model(l1, EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS)
        cache = repro.splat.ViewCache()
        repro.measure_foveated("u", fmodel, setup, view_cache=cache)
        repro.measure_foveated("u", fmodel, setup, view_cache=cache)
        assert cache.misses == len(setup.eval_cameras)
        assert cache.hits == len(setup.eval_cameras)

    def test_build_and_measure_metasapiens(self, setup):
        models = repro.build_metasapiens(
            setup, variant="L", prune_rounds=2, finetune_iterations=1
        )
        assert models.variant.model.num_points <= setup.scene.num_points * 2
        assert models.foveated.num_levels == 4
        m = repro.measure_foveated("MetaSapiens-L", models.foveated, setup)
        assert m.fps > 0
        assert m.workload.projection_runs == 1
