"""Foveated batching: ``render_foveated_batch`` / ``foveated_frame_batch``.

The batched foveated pipeline must be indistinguishable from the per-frame
path: a batch of one frame is **bit-identical** to :func:`render_foveated`
(both route through the same staged span code), and multi-gaze /
multi-camera batches match the per-frame ``reference`` oracle within 1e-10
— including mixed gazes, off-screen gazes, zero-splat quality levels and
frames without any intersections.  The registry's ``has_foveated_batch``
capability flag and the dispatcher's per-frame fallback for backends
without the batched entry point are pinned here too.
"""

import numpy as np
import pytest

from repro.foveation import (
    render_foveated,
    render_foveated_batch,
    uniform_foveated_model,
)
from repro.harness import EVAL_LEVEL_FRACTIONS, EVAL_REGION_LAYOUT
from repro.scenes import gaze_trajectory
from repro.splat import Camera, RenderConfig, ViewCache
from repro.splat.backends import (
    ReferenceBackend,
    backend_info,
    describe_backends,
    register_backend,
    supports_foveated_batch,
)

TOL = 1e-10
ALL_BACKENDS = ("packed", "packed-xp", "reference")


@pytest.fixture(scope="module")
def fmodel(small_scene):
    return uniform_foveated_model(
        small_scene, EVAL_REGION_LAYOUT, EVAL_LEVEL_FRACTIONS
    )


@pytest.fixture(scope="module")
def fmodel_empty_l4(small_scene):
    """A hierarchy whose coarsest level holds zero points."""
    return uniform_foveated_model(
        small_scene, EVAL_REGION_LAYOUT, (1.0, 0.45, 0.22, 0.0)
    )


@pytest.fixture()
def away_camera() -> Camera:
    """A pose looking away from the scene: zero projected splats."""
    return Camera.from_fov(
        width=96,
        height=64,
        fov_x_deg=60.0,
        position=np.array([0.0, 0.0, -5.0]),
        look_at=np.array([0.0, 0.0, -10.0]),
    )


def assert_frames_equal(ref, got, atol=None):
    if atol is None:
        assert np.array_equal(ref.image, got.image)
        assert np.array_equal(
            ref.stats.raster_intersections_per_tile,
            got.stats.raster_intersections_per_tile,
        )
    else:
        assert np.abs(ref.image - got.image).max() < atol
        assert np.allclose(
            ref.stats.raster_intersections_per_tile,
            got.stats.raster_intersections_per_tile,
            atol=atol,
        )
    assert np.array_equal(
        ref.stats.sort_intersections_per_tile,
        got.stats.sort_intersections_per_tile,
    )
    assert ref.stats.blend_pixels == got.stats.blend_pixels


class TestBatchOfOne:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("gaze", [None, (0.0, 0.0), (-50.0, 500.0)])
    def test_bitwise_identical_to_render_foveated(
        self, fmodel, train_cameras, backend, gaze
    ):
        config = RenderConfig(backend=backend)
        single = render_foveated(fmodel, train_cameras[0], gaze=gaze, config=config)
        batch = render_foveated_batch(
            fmodel, train_cameras[0], gazes=[gaze], config=config
        )
        assert len(batch) == 1
        assert_frames_equal(single, batch[0])

    @pytest.mark.parametrize(
        "gaze", [(10.0, 12.0), [10.0, 12.0], np.array([10.0, 12.0])]
    )
    def test_single_gaze_forms_broadcast(self, fmodel, train_cameras, gaze):
        # Every gaze form render_foveated accepts is one point here too —
        # a 2-float list must not be misread as two frames' coordinates.
        single = render_foveated(fmodel, train_cameras[0], gaze=(10.0, 12.0))
        batch = render_foveated_batch(fmodel, train_cameras[0], gazes=gaze)
        assert len(batch) == 1
        assert_frames_equal(single, batch[0])

    def test_wrong_length_gaze_array_rejected(self, fmodel, train_cameras):
        with pytest.raises(ValueError, match="coordinates"):
            render_foveated_batch(
                fmodel, train_cameras[0], gazes=np.array([1.0, 2.0, 3.0])
            )


class TestMultiFrameEquivalence:
    # Mixed gazes: centred, explicit corner, far off-screen, trajectory-like.
    GAZES = [None, (0.0, 0.0), (-50.0, 500.0), (48.0, 32.0)]

    @pytest.mark.parametrize("backend", ("packed", "packed-xp"))
    def test_multi_gaze_matches_per_frame_reference(
        self, fmodel, train_cameras, backend
    ):
        batch = render_foveated_batch(
            fmodel, train_cameras[0], gazes=self.GAZES,
            config=RenderConfig(backend=backend),
        )
        assert len(batch) == len(self.GAZES)
        blend_seen = 0
        for gaze, got in zip(self.GAZES, batch):
            ref = render_foveated(
                fmodel, train_cameras[0], gaze=gaze,
                config=RenderConfig(backend="reference"),
            )
            assert_frames_equal(ref, got, atol=TOL)
            blend_seen += got.stats.blend_pixels
        # The scenario must actually exercise the two-level blending path.
        assert blend_seen > 0

    def test_multi_camera_broadcast_gaze(self, fmodel, train_cameras, eval_cameras):
        cameras = list(train_cameras[:2]) + list(eval_cameras[:1])
        batch = render_foveated_batch(fmodel, cameras, gazes=(20.0, 20.0))
        for camera, got in zip(cameras, batch):
            ref = render_foveated(
                fmodel, camera, gaze=(20.0, 20.0),
                config=RenderConfig(backend="reference"),
            )
            assert_frames_equal(ref, got, atol=TOL)

    def test_mixed_cameras_and_gazes(self, fmodel, train_cameras):
        cameras = [train_cameras[0], train_cameras[1], train_cameras[0]]
        gazes = [None, (5.0, 40.0), (90.0, 10.0)]
        batch = render_foveated_batch(fmodel, cameras, gazes=gazes)
        for camera, gaze, got in zip(cameras, gazes, batch):
            ref = render_foveated(
                fmodel, camera, gaze=gaze, config=RenderConfig(backend="reference")
            )
            assert_frames_equal(ref, got, atol=TOL)

    def test_zero_splat_level(self, fmodel_empty_l4, train_cameras):
        # The far periphery renders an empty point subset; batched and
        # per-frame reference must agree there too.
        gazes = [None, (0.0, 0.0)]
        batch = render_foveated_batch(fmodel_empty_l4, train_cameras[0], gazes=gazes)
        for gaze, got in zip(gazes, batch):
            ref = render_foveated(
                fmodel_empty_l4, train_cameras[0], gaze=gaze,
                config=RenderConfig(backend="reference"),
            )
            assert_frames_equal(ref, got, atol=TOL)

    def test_empty_frame_in_batch(self, fmodel, train_cameras, away_camera):
        # A pose with zero projected splats rides the same batch as a
        # populated one: pure background, zero workload.
        cameras = [train_cameras[0], away_camera]
        batch = render_foveated_batch(fmodel, cameras)
        empty = batch[1]
        assert np.allclose(empty.image, 0.0)
        assert empty.stats.total_sort_intersections == 0
        assert empty.stats.blend_pixels == 0
        ref = render_foveated(
            fmodel, train_cameras[0], config=RenderConfig(backend="reference")
        )
        assert_frames_equal(ref, batch[0], atol=TOL)

    def test_batch_size_chunking_is_bitwise(self, fmodel, train_cameras):
        gazes = [
            tuple(g) for g in gaze_trajectory(96, 64, 5, seed=3)
        ]
        whole = render_foveated_batch(fmodel, train_cameras[0], gazes=gazes)
        chunked = render_foveated_batch(
            fmodel, train_cameras[0], gazes=gazes, batch_size=2
        )
        for a, b in zip(whole, chunked):
            assert_frames_equal(a, b)

    def test_trajectory_against_per_frame_packed(self, fmodel, train_cameras):
        # A realistic scanpath: every batched frame is bit-identical to its
        # own single-frame render (the per-frame scan segments are exact).
        gazes = [tuple(g) for g in gaze_trajectory(96, 64, 6, seed=11)]
        batch = render_foveated_batch(fmodel, train_cameras[0], gazes=gazes)
        for gaze, got in zip(gazes, batch):
            single = render_foveated(fmodel, train_cameras[0], gaze=gaze)
            assert_frames_equal(single, got)


class TestPreparationSharing:
    def test_cache_prepares_each_pose_once(self, fmodel, train_cameras):
        cache = ViewCache()
        gazes = [tuple(g) for g in gaze_trajectory(96, 64, 4, seed=5)]
        render_foveated_batch(fmodel, train_cameras[0], gazes=gazes, cache=cache)
        assert cache.misses == 1  # one pose, many gazes: one preparation
        assert cache.hits == 0
        render_foveated_batch(fmodel, train_cameras[0], gazes=gazes, cache=cache)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_shared_prefix_without_cache(self, fmodel, train_cameras, monkeypatch):
        import repro.foveation.fr_renderer as fr_renderer

        calls = []
        real = fr_renderer.prepare_view

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(fr_renderer, "prepare_view", counting)
        gazes = [tuple(g) for g in gaze_trajectory(96, 64, 5, seed=6)]
        render_foveated_batch(fmodel, train_cameras[0], gazes=gazes)
        # One projection/tiling/sorting pass serves the whole trajectory.
        assert len(calls) == 1
        # ... even when batch_size splits the trajectory across chunks.
        calls.clear()
        render_foveated_batch(
            fmodel, train_cameras[0], gazes=gazes, batch_size=2
        )
        assert len(calls) == 1

    def test_cache_hashes_model_once_per_chunk(
        self, fmodel, train_cameras, monkeypatch
    ):
        import repro.splat.renderer as renderer

        hashes = []
        real = renderer.model_fingerprint

        def counting(model):
            hashes.append(1)
            return real(model)

        monkeypatch.setattr(renderer, "model_fingerprint", counting)
        cache = ViewCache()
        render_foveated_batch(
            fmodel, train_cameras[:2], gazes=(10.0, 10.0), cache=cache
        )
        # Lookups batch through get_batch: one O(parameter-bytes) model
        # fingerprint for the whole (single-chunk) call, not one per pose.
        assert len(hashes) == 1
        assert cache.misses == 2

    def test_mismatched_lengths_rejected(self, fmodel, train_cameras):
        with pytest.raises(ValueError, match="lengths must match"):
            render_foveated_batch(
                fmodel, train_cameras[:3], gazes=[None, (0.0, 0.0)]
            )

    def test_bad_batch_size_rejected(self, fmodel, train_cameras):
        with pytest.raises(ValueError, match="batch_size"):
            render_foveated_batch(fmodel, train_cameras[0], batch_size=0)

    def test_empty_input(self, fmodel):
        assert render_foveated_batch(fmodel, []) == []


class _ForwardingBackend:
    """A custom engine exposing only the per-frame foveated entry point."""

    name = "fovtest-loop"

    def __init__(self):
        self._ref = ReferenceBackend()
        self.foveated_calls = 0

    def forward(self, *args, **kwargs):
        return self._ref.forward(*args, **kwargs)

    def backward(self, *args, **kwargs):
        return self._ref.backward(*args, **kwargs)

    def foveated_frame(self, *args, **kwargs):
        self.foveated_calls += 1
        return self._ref.foveated_frame(*args, **kwargs)

    def multi_model_frame(self, *args, **kwargs):
        return self._ref.multi_model_frame(*args, **kwargs)


class TestRegistryAndFallback:
    def test_builtin_capability_flags(self):
        for name in ALL_BACKENDS:
            assert backend_info(name).has_foveated_batch is True

    def test_describe_lists_foveated_batch_column(self):
        assert "fov-b" in describe_backends()

    def test_flagless_backend_without_method_probes_false(self):
        engine = _ForwardingBackend()
        assert not supports_foveated_batch(engine)

    def test_true_flag_requires_the_method(self):
        # A mis-flagged registration cannot crash the dispatcher.
        register_backend(
            "fovtest-misflagged", _ForwardingBackend, has_foveated_batch=True
        )
        from repro.splat.backends import get_backend

        assert not supports_foveated_batch(get_backend("fovtest-misflagged"))

    def test_dispatcher_loops_backends_without_batch(self, fmodel, train_cameras):
        from repro.splat.backends import get_backend

        register_backend("fovtest-loop", _ForwardingBackend)
        engine = get_backend("fovtest-loop")
        gazes = [None, (0.0, 0.0), (30.0, 20.0)]
        batch = render_foveated_batch(
            fmodel, train_cameras[0], gazes=gazes,
            config=RenderConfig(backend="fovtest-loop"),
        )
        assert engine.foveated_calls == len(gazes)
        for gaze, got in zip(gazes, batch):
            ref = render_foveated(
                fmodel, train_cameras[0], gaze=gaze,
                config=RenderConfig(backend="reference"),
            )
            assert_frames_equal(ref, got)


class TestLevelSpans:
    def test_packed_surfaces_filtered_levels(self, fmodel, train_cameras):
        result = render_foveated(
            fmodel, train_cameras[0], config=RenderConfig(backend="packed")
        )
        assert result.level_spans
        tl = result.maps.tile_level
        for t, spans in result.level_spans.items():
            assert 1 <= t <= fmodel.num_levels
            if spans.num_spans:
                # Every surfaced span sits in a tile of its own level, and
                # every surviving pair passed the level's quality bound.
                assert np.all(tl[np.unique(spans.span_tile)] == t)

    def test_level_filtering_prunes_spans(self, fmodel, train_cameras):
        # The coarsest level keeps only bound >= L points: its filtered
        # span list must be no larger than the unfiltered tile subset.
        config = RenderConfig(backend="packed")
        result = render_foveated(fmodel, train_cameras[0], config=config)
        batch = render_foveated_batch(fmodel, train_cameras[0], config=config)
        got = {t: s.num_spans for t, s in batch[0].level_spans.items()}
        want = {t: s.num_spans for t, s in result.level_spans.items()}
        assert got == want
        total = sum(got.values())
        assert total > 0

    def test_reference_reports_none(self, fmodel, train_cameras):
        result = render_foveated(
            fmodel, train_cameras[0], config=RenderConfig(backend="reference")
        )
        assert result.level_spans is None
