"""Simulated 2IFC user study: observer model and statistics."""

import numpy as np
import pytest

from repro.study import (
    ObserverModel,
    StimulusQuality,
    UserStudyResult,
    run_user_study,
    simulate_2ifc_votes,
)


def stim(name, hvsq, flicker=0.0):
    return StimulusQuality(name=name, hvsq=hvsq, flicker=flicker)


class TestObserver:
    def test_equal_stimuli_give_half(self):
        obs = ObserverModel()
        a = stim("a", 1e-5)
        assert obs.preference_probability(a, a) == pytest.approx(0.5)

    def test_better_hvsq_preferred(self):
        obs = ObserverModel()
        good = stim("good", 1e-6)
        bad = stim("bad", 1e-4)
        assert obs.preference_probability(good, bad) > 0.5

    def test_flicker_penalized(self):
        obs = ObserverModel()
        steady = stim("steady", 1e-5, flicker=0.0)
        flickery = stim("flicker", 1e-5, flicker=0.3)
        assert obs.preference_probability(steady, flickery) > 0.5

    def test_noise_flattens_preference(self):
        crisp = ObserverModel(decision_noise=0.1)
        noisy = ObserverModel(decision_noise=10.0)
        good, bad = stim("g", 1e-6), stim("b", 5e-5)
        assert crisp.preference_probability(good, bad) > noisy.preference_probability(
            good, bad
        )


class TestVotes:
    def test_shapes_and_bounds(self):
        rng = np.random.default_rng(0)
        votes = simulate_2ifc_votes(stim("a", 1e-5), stim("b", 1e-5), 12, 8, rng)
        assert votes.shape == (12,)
        assert np.all((votes >= 0) & (votes <= 8))

    def test_deterministic_given_rng(self):
        a = simulate_2ifc_votes(
            stim("a", 1e-5), stim("b", 2e-5), 10, 8, np.random.default_rng(3)
        )
        b = simulate_2ifc_votes(
            stim("a", 1e-5), stim("b", 2e-5), 10, 8, np.random.default_rng(3)
        )
        assert np.array_equal(a, b)

    def test_dominant_method_wins_most_votes(self):
        rng = np.random.default_rng(1)
        votes = simulate_2ifc_votes(stim("good", 1e-7), stim("bad", 1e-3), 20, 8, rng)
        assert votes.mean() > 6.0


class TestStudy:
    @pytest.fixture()
    def stimuli(self):
        # Ours: same HVSQ, less flicker → slight preference for ours.
        return {
            scene: (stim("ours", 2e-5, 0.02), stim("baseline", 2e-5, 0.08))
            for scene in ("room", "drjohnson", "truck", "bicycle")
        }

    def test_result_structure(self, stimuli):
        result = run_user_study(stimuli, seed=0)
        assert isinstance(result, UserStudyResult)
        assert len(result.scenes) == 4
        assert result.total_trials == 4 * 12 * 8

    def test_no_worse_hypothesis_rejected(self, stimuli):
        """Paper claim: binomial test rejects 'baseline preferred' at p<0.01."""
        result = run_user_study(stimuli, seed=0)
        assert result.ours_preference_rate >= 0.5
        assert result.p_value < 0.01

    def test_clearly_worse_method_fails_test(self):
        stimuli = {
            "room": (stim("ours", 5e-3, 0.0), stim("baseline", 1e-6, 0.0)),
        }
        result = run_user_study(stimuli, seed=0)
        assert result.p_value > 0.5

    def test_vote_accounting(self, stimuli):
        result = run_user_study(stimuli, seed=1)
        for scene in result.scenes:
            assert np.all(scene.votes_ours + scene.votes_baseline == 8)
            assert scene.mean_ours + scene.mean_baseline == pytest.approx(8.0)
