"""Mobile-GPU performance model: workload extraction and latency."""

import dataclasses

import numpy as np
import pytest

from repro.foveation import make_smfr, render_foveated, RegionLayout
from repro.perf import (
    DEFAULT_GPU,
    FrameWorkload,
    GPUModel,
    mean_workload,
    workload_from_fr,
    workload_from_render,
)
from repro.splat import RenderConfig, render


@pytest.fixture(scope="module")
def workload(rendered):
    return workload_from_render(rendered)


class TestWorkloadExtraction:
    def test_counts_match_stats(self, rendered, workload):
        stats = rendered.stats
        assert workload.num_projected == stats.num_projected
        assert workload.raster_splat_pixels == stats.total_intersections * 256

    def test_stats_required(self, small_scene, train_cameras):
        result = render(small_scene, train_cameras[0], RenderConfig(collect_stats=False))
        with pytest.raises(ValueError):
            workload_from_render(result)

    def test_per_pixel_sort_flag_propagates(self, small_scene, train_cameras):
        config = RenderConfig(per_pixel_sort=True)
        result = render(small_scene, train_cameras[0], config)
        workload = workload_from_render(result, config)
        assert workload.per_pixel_sort

    def test_fr_extraction(self, small_scene, train_cameras):
        layout = RegionLayout(boundaries_deg=(0.0, 12.0, 20.0, 28.0))
        fm = make_smfr(small_scene, layout)
        fr = render_foveated(fm, train_cameras[0])
        workload = workload_from_fr(fr.stats)
        assert workload.projection_runs == 1
        assert workload.blend_pixels == fr.stats.blend_pixels

    def test_mean_workload(self, workload):
        doubled = dataclasses.replace(
            workload, raster_splat_pixels=workload.raster_splat_pixels * 3
        )
        mean = mean_workload([workload, doubled])
        assert mean.raster_splat_pixels == pytest.approx(
            2 * workload.raster_splat_pixels
        )

    def test_mean_workload_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_workload([])


class TestGPUModel:
    def test_latency_positive_and_additive(self, workload):
        gpu = DEFAULT_GPU
        assert gpu.latency_ms(workload) > gpu.base_ms

    def test_fps_inverse_of_latency(self, workload):
        gpu = DEFAULT_GPU
        assert gpu.fps(workload) == pytest.approx(1000.0 / gpu.latency_ms(workload))

    def test_raster_dominates_dense_frames(self, workload):
        """Fig 4's structural claim: intersections drive latency."""
        gpu = DEFAULT_GPU
        base = gpu.latency_ms(workload)
        more_raster = dataclasses.replace(
            workload, raster_splat_pixels=workload.raster_splat_pixels * 2
        )
        more_points = dataclasses.replace(
            workload, num_projected=workload.num_projected * 2
        )
        raster_delta = gpu.latency_ms(more_raster) - base
        points_delta = gpu.latency_ms(more_points) - base
        assert raster_delta > 5 * points_delta

    def test_per_pixel_sort_costs_more(self, workload):
        stp = dataclasses.replace(workload, per_pixel_sort=True)
        assert DEFAULT_GPU.latency_ms(stp) > DEFAULT_GPU.latency_ms(workload)

    def test_mmfr_projection_runs_cost(self, workload):
        mmfr = dataclasses.replace(workload, projection_runs=4)
        assert DEFAULT_GPU.latency_ms(mmfr) > DEFAULT_GPU.latency_ms(workload)

    def test_dense_model_below_realtime(self, small_scene, train_cameras):
        """Calibration: a dense render at evaluation scale lands in the
        paper's <10 FPS band for dense PBNR on the mobile GPU."""
        from repro.baselines import make_3dgs

        dense = make_3dgs(small_scene)
        result = render(dense.model, train_cameras[0])
        fps = DEFAULT_GPU.fps(workload_from_render(result))
        assert fps < 30.0

    def test_energy_tracks_latency(self, workload):
        gpu = GPUModel(power_w=10.0)
        assert gpu.energy_mj(workload) == pytest.approx(10.0 * gpu.latency_ms(workload))
