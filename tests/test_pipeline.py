"""The Fig 6 prune/re-train controller and variant construction."""

import numpy as np
import pytest

from repro.baselines import make_3dgs
from repro.core import (
    PruneTrainConfig,
    build_variant,
    efficiency_aware_optimize,
    make_l1_quality_loss,
    mean_intersections,
    mean_psnr,
)
from repro.train import TrainConfig


@pytest.fixture(scope="module")
def dense_setup(small_scene, train_cameras, train_targets):
    dense = make_3dgs(small_scene, seed=0)
    return dense, train_cameras, train_targets


class TestController:
    def test_monotone_point_reduction(self, dense_setup):
        dense, cameras, targets = dense_setup
        config = PruneTrainConfig(
            max_iterations=2, max_retrain_rounds=0, train=TrainConfig(iterations=1)
        )
        result = efficiency_aware_optimize(dense.model, cameras, targets, config=config)
        assert result.point_history[0] > result.point_history[-1]
        assert all(np.diff(result.point_history) <= 0)

    def test_intersections_fall_with_points(self, dense_setup):
        dense, cameras, targets = dense_setup
        config = PruneTrainConfig(
            max_iterations=2, max_retrain_rounds=0, train=TrainConfig(iterations=1)
        )
        result = efficiency_aware_optimize(dense.model, cameras, targets, config=config)
        assert result.intersection_history[-1] < result.intersection_history[0]

    def test_retraining_recovers_quality(self, dense_setup):
        dense, cameras, targets = dense_setup
        loss = make_l1_quality_loss(cameras, targets)
        no_retrain = efficiency_aware_optimize(
            dense.model, cameras, targets,
            config=PruneTrainConfig(max_iterations=2, max_retrain_rounds=0,
                                    prune_fraction=0.3),
        )
        with_retrain = efficiency_aware_optimize(
            dense.model, cameras, targets,
            config=PruneTrainConfig(max_iterations=2, max_retrain_rounds=2,
                                    prune_fraction=0.3, quality_threshold=0.0,
                                    train=TrainConfig(iterations=5)),
        )
        assert loss(with_retrain.model) < loss(no_retrain.model)

    def test_histories_aligned(self, dense_setup):
        dense, cameras, targets = dense_setup
        config = PruneTrainConfig(max_iterations=3, max_retrain_rounds=0)
        result = efficiency_aware_optimize(dense.model, cameras, targets, config=config)
        assert len(result.quality_history) == 4  # initial + 3 iterations
        assert len(result.point_history) == len(result.intersection_history)


class TestMeanIntersections:
    def test_positive(self, dense_setup):
        dense, cameras, _ = dense_setup
        assert mean_intersections(dense.model, cameras[:2]) > 0


class TestVariants:
    def test_variant_respects_psnr_floor(self, small_scene, train_cameras, train_targets, dense_setup):
        dense, cameras, targets = dense_setup
        result = build_variant(
            dense.model, cameras, targets, variant="H", prune_fraction=0.25,
            max_rounds=3, finetune_rounds=0,
        )
        assert result.psnr >= 0.99 * result.dense_psnr
        assert result.model.num_points <= dense.model.num_points
        assert result.name == "MetaSapiens-H"

    def test_lower_variants_prune_harder_or_equal(self, dense_setup):
        dense, cameras, targets = dense_setup
        h = build_variant(dense.model, cameras, targets, "H", prune_fraction=0.3,
                          max_rounds=3, finetune_rounds=0)
        low = build_variant(dense.model, cameras, targets, "L", prune_fraction=0.3,
                            max_rounds=3, finetune_rounds=0)
        assert low.model.num_points <= h.model.num_points

    def test_unknown_variant_rejected(self, dense_setup):
        dense, cameras, targets = dense_setup
        with pytest.raises(KeyError):
            build_variant(dense.model, cameras, targets, "X")

    def test_mean_psnr_finite(self, dense_setup):
        dense, cameras, targets = dense_setup
        value = mean_psnr(dense.model, cameras, targets)
        assert np.isfinite(value) and value > 5.0
