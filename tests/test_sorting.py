"""Sorting stage: depth ordering per tile, per-pixel variant, cost model."""

import numpy as np
import pytest

from repro.splat.sorting import per_pixel_depths, sort_cost_ops, sort_tile_splats
from repro.splat.rasterizer import tile_pixel_centers


class TestTileSorting:
    def test_each_tile_depth_sorted(self, prepared_view):
        projected, assignment = prepared_view
        for tile_id in range(assignment.grid.num_tiles):
            idx = assignment.splats_in_tile(tile_id)
            depths = projected.depths[idx]
            assert np.all(np.diff(depths) >= -1e-9)

    def test_sorting_preserves_membership(self, prepared_view):
        projected, assignment = prepared_view
        resorted = sort_tile_splats(projected, assignment)
        for tile_id in range(assignment.grid.num_tiles):
            before = np.sort(assignment.splats_in_tile(tile_id))
            after = np.sort(resorted.splats_in_tile(tile_id))
            assert np.array_equal(before, after)

    def test_sorting_is_idempotent(self, prepared_view):
        projected, assignment = prepared_view
        once = sort_tile_splats(projected, assignment)
        twice = sort_tile_splats(projected, once)
        assert np.array_equal(once.pair_splats, twice.pair_splats)


class TestPerPixelDepths:
    def test_shape(self, prepared_view):
        projected, assignment = prepared_view
        tile_id = int(np.argmax(assignment.intersections_per_tile()))
        idx = assignment.splats_in_tile(tile_id)[:10]
        pixels = tile_pixel_centers(assignment.grid, tile_id)
        depths = per_pixel_depths(projected, idx, pixels)
        assert depths.shape == (idx.size, pixels.shape[0])

    def test_center_pixel_depth_close_to_base(self, prepared_view):
        projected, assignment = prepared_view
        tile_id = int(np.argmax(assignment.intersections_per_tile()))
        idx = assignment.splats_in_tile(tile_id)[:5]
        means = projected.means2d[idx]
        depths = per_pixel_depths(projected, idx, means)  # at splat centres
        base = projected.depths[idx]
        assert np.allclose(np.diag(depths[:, : idx.size]), base, rtol=0.02)

    def test_depths_vary_across_pixels(self, prepared_view):
        projected, assignment = prepared_view
        tile_id = int(np.argmax(assignment.intersections_per_tile()))
        idx = assignment.splats_in_tile(tile_id)[:5]
        pixels = tile_pixel_centers(assignment.grid, tile_id)
        depths = per_pixel_depths(projected, idx, pixels)
        assert depths.std(axis=1).max() > 0.0


class TestSortCost:
    def test_zero_for_trivial_tiles(self):
        assert sort_cost_ops(np.array([0, 1, 1])) == 0.0

    def test_nlogn_growth(self):
        small = sort_cost_ops(np.array([16]))
        large = sort_cost_ops(np.array([64]))
        assert large > 4 * small  # superlinear

    def test_per_pixel_multiplier(self):
        counts = np.array([32, 64, 128])
        assert sort_cost_ops(counts, per_pixel=True) == pytest.approx(
            4.0 * sort_cost_ops(counts, per_pixel=False)
        )

    def test_additive_over_tiles(self):
        a = sort_cost_ops(np.array([10]))
        b = sort_cost_ops(np.array([20]))
        assert sort_cost_ops(np.array([10, 20])) == pytest.approx(a + b)
