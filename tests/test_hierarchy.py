"""Hierarchical subset representation + selective multi-versioning."""

import numpy as np
import pytest

from repro.foveation.hierarchy import FoveatedModel, uniform_foveated_model
from repro.foveation.regions import RegionLayout
from repro.splat import random_model


@pytest.fixture()
def layout():
    return RegionLayout(boundaries_deg=(0.0, 12.0, 20.0, 28.0))


@pytest.fixture()
def fmodel(layout):
    base = random_model(100, np.random.default_rng(0))
    return uniform_foveated_model(base, layout, level_fractions=(1.0, 0.5, 0.25, 0.1))


class TestSubsetting:
    def test_strict_subset_chain(self, fmodel):
        """The paper's key invariant: L4 ⊂ L3 ⊂ L2 ⊂ L1."""
        for level in range(2, fmodel.num_levels + 1):
            inner = fmodel.level_mask(level)
            outer = fmodel.level_mask(level - 1)
            assert np.all(outer[inner])  # every inner point is in outer

    def test_level_one_uses_all_points(self, fmodel):
        assert fmodel.level_point_count(1) == fmodel.num_points

    def test_level_counts_match_fractions(self, fmodel):
        counts = fmodel.level_counts()
        assert list(counts) == [100, 50, 25, 10]

    def test_total_storage_equals_l1_not_sum(self, fmodel):
        """P_total = max_i P_i = P_1 (Sec 4.2) — storage is the base model
        plus only the small multi-version extras, not N models."""
        base_bytes = fmodel.base.storage_bytes()
        sum_of_levels = sum(
            fmodel.level_model(t).storage_bytes() for t in range(1, 5)
        )
        assert fmodel.storage_bytes() < 1.2 * base_bytes
        assert fmodel.storage_bytes() < sum_of_levels

    def test_multiversion_overhead_small(self, fmodel):
        # Expected overhead: points with bound m store (m-1) extra copies of
        # the 4 multi-versioned scalars plus a 1-byte bound.  For degree-1 SH
        # (23 scalars/point) and these fractions that is ~16%; the paper's 6%
        # corresponds to degree-3 models (59 scalars/point).
        extra_versions = (fmodel.quality_bounds - 1).sum()
        expected = (extra_versions * 4 * 4 + fmodel.num_points) / fmodel.base.storage_bytes()
        assert fmodel.storage_overhead_fraction() == pytest.approx(expected, rel=1e-6)
        assert fmodel.storage_overhead_fraction() < 0.25

    def test_rank_order_respected(self, layout):
        base = random_model(50, np.random.default_rng(1))
        order = np.argsort(np.random.default_rng(2).uniform(size=50))
        fm = uniform_foveated_model(base, layout, (1.0, 0.4, 0.2, 0.1), order=order)
        # The top-ranked 20 points (order[:20]) must be exactly level >= 2.
        assert np.array_equal(np.sort(order[:20]), np.flatnonzero(fm.quality_bounds >= 2))

    def test_invalid_fractions_rejected(self, layout):
        base = random_model(20, np.random.default_rng(3))
        with pytest.raises(ValueError):
            uniform_foveated_model(base, layout, (0.9, 0.5, 0.2, 0.1))
        with pytest.raises(ValueError):
            uniform_foveated_model(base, layout, (1.0, 0.2, 0.5, 0.1))
        with pytest.raises(ValueError):
            uniform_foveated_model(base, layout, (1.0, 0.5))


class TestMultiVersioning:
    def test_versions_initialized_from_base(self, fmodel):
        for level in range(1, 5):
            assert np.allclose(
                fmodel.level_opacity_logits(level), fmodel.base.opacity_logits
            )
            assert np.allclose(fmodel.level_sh_dc(level), fmodel.base.sh_dc)

    def test_color_delta_zero_initially(self, fmodel):
        assert np.allclose(fmodel.level_color_delta(3), 0.0)

    def test_color_delta_tracks_dc_change(self, fmodel):
        fmodel.mv_sh_dc[:, 2, 0] += 1.0  # level 3, red channel
        from repro.splat.sh import SH_C0

        delta = fmodel.level_color_delta(3)
        assert np.allclose(delta[:, 0], SH_C0)
        assert np.allclose(delta[:, 1:], 0.0)

    def test_level_model_materialization(self, fmodel):
        fmodel.mv_opacity_logits[:, 1] = 2.5  # level 2 versions
        sub = fmodel.level_model(2)
        assert sub.num_points == fmodel.level_point_count(2)
        assert np.allclose(sub.opacity_logits, 2.5)

    def test_invalid_level_rejected(self, fmodel):
        with pytest.raises(ValueError):
            fmodel.level_mask(0)
        with pytest.raises(ValueError):
            fmodel.level_opacities(5)


class TestValidation:
    def test_shape_checks(self, layout):
        base = random_model(10, np.random.default_rng(4))
        good = dict(
            base=base,
            quality_bounds=np.ones(10, dtype=int),
            mv_opacity_logits=np.zeros((10, 4)),
            mv_sh_dc=np.zeros((10, 4, 3)),
            layout=layout,
        )
        FoveatedModel(**good)
        bad_bounds = dict(good, quality_bounds=np.full(10, 9))
        with pytest.raises(ValueError):
            FoveatedModel(**bad_bounds)
        bad_mv = dict(good, mv_opacity_logits=np.zeros((10, 3)))
        with pytest.raises(ValueError):
            FoveatedModel(**bad_mv)
        bad_dc = dict(good, mv_sh_dc=np.zeros((10, 4, 2)))
        with pytest.raises(ValueError):
            FoveatedModel(**bad_dc)
