"""Edge cases and failure injection across the whole pipeline."""

import numpy as np
import pytest

from repro.accel import METASAPIENS_BASE, METASAPIENS_TM_IP, simulate_pipeline
from repro.foveation import (
    FoveatedModel,
    RegionLayout,
    render_foveated,
    uniform_foveated_model,
)
from repro.perf import DEFAULT_GPU, FrameWorkload
from repro.splat import Camera, GaussianModel, random_model, render
from repro.splat.tiling import TileGrid, assign_tiles
from repro.splat.projection import project_gaussians


def single_point_model():
    return GaussianModel(
        positions=np.array([[0.0, 0.0, 0.0]]),
        log_scales=np.log(np.full((1, 3), 0.2)),
        rotations=np.array([[1.0, 0, 0, 0]]),
        opacity_logits=np.array([2.0]),
        sh=np.zeros((1, 1, 3)),
    )


class TestDegenerateModels:
    def test_single_point_full_pipeline(self, front_camera):
        result = render(single_point_model(), front_camera)
        assert result.stats.num_projected == 1
        assert result.image.max() > 0.0

    def test_all_transparent_model(self, front_camera):
        model = single_point_model()
        model.opacity_logits[:] = -20.0  # alpha below the 1/255 cut
        result = render(model, front_camera)
        # The splat never passes the intersect test; background everywhere.
        assert np.allclose(result.image, 0.0)
        assert result.stats.dominated_pixels.sum() == 0

    def test_fully_occluded_scene(self, front_camera):
        # A wall in front of everything: the points behind get no Val.
        wall = single_point_model()
        wall.log_scales[:] = np.log(5.0)
        wall.opacity_logits[:] = 10.0
        wall.positions[0, 2] = -2.0
        behind = random_model(20, np.random.default_rng(0), extent=1.0, sh_degree=0)
        model = GaussianModel.concatenate([wall, behind])
        result = render(model, front_camera)
        assert result.stats.dominated_pixels[0] > 0
        assert result.stats.dominated_pixels[1:].sum() == 0

    def test_degenerate_scale_handled(self, front_camera):
        model = single_point_model()
        model.log_scales[:] = np.log(1e-9)  # needle-thin splat
        result = render(model, front_camera)
        assert np.all(np.isfinite(result.image))


class TestExtremeCameras:
    def test_tiny_image(self):
        cam = Camera.from_fov(8, 8, 60.0, np.array([0.0, 0.0, -3.0]), np.zeros(3))
        result = render(single_point_model(), cam)
        assert result.image.shape == (8, 8, 3)

    def test_non_tile_multiple_image(self):
        cam = Camera.from_fov(70, 45, 60.0, np.array([0.0, 0.0, -3.0]), np.zeros(3))
        result = render(single_point_model(), cam)
        assert result.image.shape == (45, 70, 3)

    def test_wide_fov(self):
        cam = Camera.from_fov(64, 48, 150.0, np.array([0.0, 0.0, -3.0]), np.zeros(3))
        ecc = cam.pixel_eccentricity()
        assert np.all(np.isfinite(ecc))
        assert ecc.max() > 60.0

    def test_anisotropic_focal(self):
        cam = Camera(
            width=64, height=48, fx=80.0, fy=40.0, cx=32.0, cy=24.0,
            world_to_cam_rotation=np.eye(3),
            world_to_cam_translation=np.array([0.0, 0.0, 4.0]),
        )
        projected = project_gaussians(single_point_model(), cam)
        assert projected.num_visible == 1


class TestFoveationEdges:
    def test_two_level_layout(self, small_scene, train_cameras):
        layout = RegionLayout(boundaries_deg=(0.0, 15.0), blend_band_deg=1.0)
        fm = uniform_foveated_model(small_scene, layout, (1.0, 0.3))
        result = render_foveated(fm, train_cameras[0])
        assert result.image.shape[2] == 3
        assert set(np.unique(result.stats.tile_levels)) <= {1, 2}

    def test_single_level_layout_is_plain_render(self, small_scene, train_cameras):
        layout = RegionLayout(boundaries_deg=(0.0,), blend_band_deg=0.0)
        fm = uniform_foveated_model(small_scene, layout, (1.0,))
        fr = render_foveated(fm, train_cameras[0])
        plain = render(small_scene, train_cameras[0])
        assert np.allclose(fr.image, plain.image, atol=1e-9)
        assert fr.stats.blend_pixels == 0

    def test_gaze_outside_image_clamps_gracefully(self, small_scene, train_cameras):
        layout = RegionLayout(boundaries_deg=(0.0, 12.0, 20.0, 28.0))
        fm = uniform_foveated_model(small_scene, layout)
        result = render_foveated(fm, train_cameras[0], gaze=(-50.0, 500.0))
        assert np.all(np.isfinite(result.image))

    def test_save_load_round_trip(self, small_scene, tmp_path):
        layout = RegionLayout(boundaries_deg=(0.0, 12.0, 20.0, 28.0))
        fm = uniform_foveated_model(small_scene, layout, (1.0, 0.5, 0.25, 0.1))
        fm.mv_opacity_logits[:, 2] += 0.5  # make versions non-trivial
        path = str(tmp_path / "fr.npz")
        fm.save(path)
        restored = FoveatedModel.load(path)
        assert np.array_equal(restored.quality_bounds, fm.quality_bounds)
        assert np.allclose(restored.mv_opacity_logits, fm.mv_opacity_logits, atol=1e-5)
        assert restored.layout.boundaries_deg == fm.layout.boundaries_deg
        assert restored.num_points == fm.num_points


class TestAccelEdges:
    def test_single_tile_frame(self):
        result = simulate_pipeline(np.array([500.0]), METASAPIENS_BASE)
        assert result.total_cycles > 0
        assert result.num_scheduled_tiles == 1

    def test_monster_tile_dominates(self):
        ints = np.array([10.0, 10.0, 100000.0, 10.0])
        base = simulate_pipeline(ints, METASAPIENS_BASE)
        # Makespan is driven by the monster tile's own work.
        assert base.total_cycles > 100000.0

    def test_ip_never_slower_than_baseline(self):
        rng = np.random.default_rng(5)
        for _ in range(5):
            ints = rng.exponential(scale=40.0, size=100)
            base = simulate_pipeline(ints, METASAPIENS_BASE)
            ip = simulate_pipeline(ints, METASAPIENS_TM_IP)
            assert ip.total_cycles <= base.total_cycles * 1.01


class TestPerfEdges:
    def test_zero_workload(self):
        workload = FrameWorkload(
            num_projected=0, projection_runs=1, sort_ops=0.0,
            raster_splat_pixels=0.0, blend_pixels=0,
        )
        assert DEFAULT_GPU.latency_ms(workload) == DEFAULT_GPU.base_ms
        assert DEFAULT_GPU.fps(workload) > 0


class TestTilingEdges:
    def test_splat_exactly_on_tile_border(self):
        cam = Camera.from_fov(64, 48, 60.0, np.array([0.0, 0.0, -3.0]), np.zeros(3))
        model = single_point_model()
        projected = project_gaussians(model, cam)
        # Force the centre onto the tile boundary at x = 16.
        projected.means2d[0] = [16.0, 16.0]
        grid = TileGrid(64, 48)
        assignment = assign_tiles(projected, grid)
        assert assignment.num_intersections >= 1

    def test_one_pixel_tiles(self):
        cam = Camera.from_fov(16, 12, 60.0, np.array([0.0, 0.0, -3.0]), np.zeros(3))
        projected = project_gaussians(single_point_model(), cam)
        grid = TileGrid(16, 12, tile_size=1)
        assignment = assign_tiles(projected, grid)
        assert assignment.grid.num_tiles == 16 * 12
        assert assignment.num_intersections > 0
