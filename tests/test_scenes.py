"""Procedural scenes: the 13 traces, determinism, structure."""

import numpy as np
import pytest

from repro.scenes import (
    ALL_TRACES,
    DATASETS,
    MIPNERF360_TRACES,
    SCENE_SPECS,
    generate_scene,
    scene_spec,
    traces_for_dataset,
)
from repro.splat import render


class TestRegistry:
    def test_thirteen_traces(self):
        assert len(ALL_TRACES) == 13

    def test_dataset_partition(self):
        total = sum(len(traces_for_dataset(d)) for d in DATASETS)
        assert total == 13
        assert len(traces_for_dataset("mipnerf360")) == 9
        assert len(traces_for_dataset("tanksandtemples")) == 2
        assert len(traces_for_dataset("deepblending")) == 2

    def test_mipnerf_traces_constant(self):
        assert set(MIPNERF360_TRACES) == {
            "bicycle", "garden", "stump", "flowers", "treehill",
            "room", "counter", "kitchen", "bonsai",
        }

    def test_unknown_trace_rejected(self):
        with pytest.raises(KeyError):
            scene_spec("office")
        with pytest.raises(KeyError):
            generate_scene("office")
        with pytest.raises(KeyError):
            traces_for_dataset("nerfstudio")

    def test_specs_sane(self):
        for spec in SCENE_SPECS.values():
            assert spec.complexity > 0
            assert spec.extent > 0


class TestGeneration:
    def test_deterministic(self):
        a = generate_scene("garden", n_points=300)
        b = generate_scene("garden", n_points=300)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.sh, b.sh)

    def test_different_traces_differ(self):
        a = generate_scene("garden", n_points=300)
        b = generate_scene("stump", n_points=300)
        assert a.num_points != b.num_points or not np.array_equal(a.positions, b.positions)

    def test_seed_override(self):
        a = generate_scene("truck", n_points=300, seed=1)
        b = generate_scene("truck", n_points=300, seed=2)
        assert not np.array_equal(a.positions, b.positions)

    def test_complexity_scales_point_count(self):
        bicycle = generate_scene("bicycle", n_points=500)  # complexity 1.8
        playroom = generate_scene("playroom", n_points=500)  # complexity 0.8
        assert bicycle.num_points > playroom.num_points

    def test_sh_degree_option(self):
        deg0 = generate_scene("room", n_points=200, sh_degree=0)
        deg2 = generate_scene("room", n_points=200, sh_degree=2)
        assert deg0.sh.shape[1] == 1
        assert deg2.sh.shape[1] == 9

    @pytest.mark.parametrize("name", ALL_TRACES)
    def test_every_trace_renders(self, name):
        from repro.scenes import trace_cameras

        scene = generate_scene(name, n_points=150)
        train, _ = trace_cameras(name, n_train=4, width=64, height=48)
        result = render(scene, train[0])
        assert result.stats.num_projected > 0
        assert result.image.std() > 0.0  # not a flat frame

    def test_opacities_valid(self):
        scene = generate_scene("drjohnson", n_points=300)
        assert np.all((scene.opacities > 0) & (scene.opacities < 1))

    def test_indoor_has_back_wall(self):
        scene = generate_scene("room", n_points=400)
        spec = scene_spec("room")
        near_back = np.abs(scene.positions[:, 2] - spec.extent) < 0.2
        assert near_back.sum() > 10
