"""Camera trajectories: orbit poses and smooth interpolation."""

import numpy as np
import pytest

from repro.scenes import interpolate_trajectory, orbit_poses, scene_spec, trace_cameras
from repro.scenes.trajectory import PAPER_TRAJECTORY_FPS, PAPER_TRAJECTORY_POSES


class TestOrbit:
    def test_pose_count(self):
        spec = scene_spec("garden")
        assert len(orbit_poses(spec, 6, 64, 48)) == 6

    def test_cameras_look_inward(self):
        spec = scene_spec("garden")
        for cam in orbit_poses(spec, 8, 64, 48):
            forward = cam.world_to_cam_rotation[2]
            to_center = -cam.position / np.linalg.norm(cam.position)
            assert forward @ to_center > 0.6

    def test_orbit_radius_respected(self):
        spec = scene_spec("bicycle")
        for cam in orbit_poses(spec, 6, 64, 48, seed=3):
            xz = np.linalg.norm([cam.position[0], cam.position[2]])
            assert 0.8 * spec.extent < xz < 2.0 * spec.extent

    def test_deterministic_per_seed(self):
        spec = scene_spec("truck")
        a = orbit_poses(spec, 4, 64, 48, seed=5)
        b = orbit_poses(spec, 4, 64, 48, seed=5)
        assert np.allclose(a[0].position, b[0].position)


class TestInterpolation:
    def test_needs_four_controls(self):
        spec = scene_spec("room")
        controls = orbit_poses(spec, 3, 64, 48)
        with pytest.raises(ValueError):
            interpolate_trajectory(controls, 10)

    def test_produces_requested_poses(self):
        spec = scene_spec("room")
        controls = orbit_poses(spec, 6, 64, 48)
        smooth = interpolate_trajectory(controls, 24)
        assert len(smooth) == 24

    def test_smoothness(self):
        # Consecutive interpolated positions move in small steps.
        spec = scene_spec("room")
        controls = orbit_poses(spec, 8, 64, 48)
        smooth = interpolate_trajectory(controls, 64)
        positions = np.asarray([c.position for c in smooth])
        steps = np.linalg.norm(np.diff(positions, axis=0), axis=1)
        control_gap = np.linalg.norm(controls[1].position - controls[0].position)
        assert steps.max() < control_gap

    def test_intrinsics_preserved(self):
        spec = scene_spec("room")
        controls = orbit_poses(spec, 5, 64, 48, fov_x_deg=80.0)
        smooth = interpolate_trajectory(controls, 10)
        assert smooth[0].fov_x_deg == pytest.approx(80.0)
        assert smooth[0].width == 64


class TestTraceCameras:
    def test_returns_both_sets(self):
        train, ev = trace_cameras("bonsai", n_train=5, n_eval=3, width=64, height=48)
        assert len(train) == 5
        assert len(ev) == 3

    def test_sparse_training_set_ok(self):
        # Fewer than 4 training poses still yields an eval trajectory.
        train, ev = trace_cameras("bonsai", n_train=2, n_eval=2, width=64, height=48)
        assert len(train) == 2
        assert len(ev) == 2

    def test_paper_constants(self):
        assert PAPER_TRAJECTORY_POSES == 1440
        assert PAPER_TRAJECTORY_POSES / PAPER_TRAJECTORY_FPS == pytest.approx(16.0)
