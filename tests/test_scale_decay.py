"""Scale decay: the WS metric (Eqns 4-5) and its training integration."""

import numpy as np
import pytest

from repro.core.scale_decay import (
    ScaleDecayConfig,
    make_scale_decay_regularizer,
    measure_usage,
    usage_weights,
    weighted_scale,
    weighted_scale_grad,
)
from repro.splat import random_model


@pytest.fixture()
def model():
    return random_model(30, np.random.default_rng(3))


class TestUsageWeights:
    def test_below_threshold_zero(self):
        g = usage_weights(np.array([0, 2, 4]), threshold=4.0)
        assert np.all(g == 0.0)

    def test_above_threshold_linear(self):
        g = usage_weights(np.array([5, 10]), threshold=4.0)
        assert g[0] == pytest.approx(1.0)
        assert g[1] == pytest.approx(6.0)


class TestWeightedScale:
    def test_zero_when_nothing_used(self, model):
        assert weighted_scale(model, np.zeros(30), threshold=4.0) == 0.0

    def test_grows_with_scale(self, model):
        usage = np.full(30, 10.0)
        before = weighted_scale(model, usage, threshold=4.0)
        bigger = model.copy()
        bigger.log_scales += 1.0
        after = weighted_scale(bigger, usage, threshold=4.0)
        assert after > before

    def test_heavily_used_points_dominate(self, model):
        light = np.full(30, 5.0)
        heavy = np.full(30, 50.0)
        assert weighted_scale(model, heavy, 4.0) > weighted_scale(model, light, 4.0)


class TestGradient:
    def test_gradient_positive_only_for_used_points(self, model):
        usage = np.zeros(30)
        usage[:10] = 20.0
        _, grad = weighted_scale_grad(model, usage, ScaleDecayConfig(gamma=1.0))
        assert np.all(grad[:10] > 0)
        assert np.all(grad[10:] == 0)

    def test_gradient_matches_finite_difference(self, model):
        usage = np.full(30, 12.0)
        config = ScaleDecayConfig(gamma=0.5)
        loss, grad = weighted_scale_grad(model, usage, config)
        eps = 1e-6
        for i in [0, 7, 19]:
            plus = model.copy()
            plus.log_scales[i] += eps
            loss_p, _ = weighted_scale_grad(plus, usage, config)
            numeric = (loss_p - loss) / eps
            assert numeric == pytest.approx(grad[i], rel=1e-4)

    def test_gamma_scales_everything(self, model):
        usage = np.full(30, 12.0)
        l1, g1 = weighted_scale_grad(model, usage, ScaleDecayConfig(gamma=1.0))
        l2, g2 = weighted_scale_grad(model, usage, ScaleDecayConfig(gamma=2.0))
        assert l2 == pytest.approx(2 * l1)
        assert np.allclose(g2, 2 * g1)


class TestUsageMeasurement:
    def test_usage_shape(self, small_scene, train_cameras):
        usage = measure_usage(small_scene, train_cameras[:2])
        assert usage.shape == (small_scene.num_points,)
        assert usage.sum() > 0

    def test_regularizer_closure(self, small_scene, train_cameras):
        reg = make_scale_decay_regularizer(train_cameras[:1])
        loss, grads = reg(small_scene)
        assert loss >= 0.0
        assert "log_scales" in grads
        assert grads["log_scales"].shape == (small_scene.num_points,)

    def test_regularizer_handles_pruned_model(self, small_scene, train_cameras):
        reg = make_scale_decay_regularizer(train_cameras[:1])
        reg(small_scene)  # prime the usage cache at full size
        pruned = small_scene.subset(np.arange(small_scene.num_points // 2))
        loss, grads = reg(pruned)  # must re-measure, not crash
        assert grads["log_scales"].shape == (pruned.num_points,)


class TestScaleDecayReducesIntersections:
    def test_shrinking_heavy_points_cuts_work(self, small_scene, train_cameras):
        """Manually applying one large WS-gradient step must reduce the
        frame's tile-ellipse intersections (the mechanism behind Fig 12's
        scale-decay speedup)."""
        from repro.splat import render

        usage = measure_usage(small_scene, train_cameras[:1])
        _, grad = weighted_scale_grad(
            small_scene, usage, ScaleDecayConfig(gamma=1.0, usage_threshold=4.0)
        )
        decayed = small_scene.copy()
        step = grad > 0
        decayed.log_scales[step] -= 0.4  # shrink the heavy points
        before = render(small_scene, train_cameras[0]).stats.total_intersections
        after = render(decayed, train_cameras[0]).stats.total_intersections
        assert after < before
