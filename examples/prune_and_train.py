"""The full Fig 6 loop: iterative CE pruning + scale-decay re-training.

    python examples/prune_and_train.py

Shows the controller trading points for speed while the composite loss
L = L_quality + γ·WS keeps quality at the prescribed threshold — and prints
the trajectory (points, intersections, quality) round by round.
"""

from __future__ import annotations

from repro.baselines import make_3dgs
from repro.core import (
    PruneTrainConfig,
    ScaleDecayConfig,
    efficiency_aware_optimize,
    measure_usage,
    weighted_scale,
)
from repro.hvs import psnr
from repro.perf import DEFAULT_GPU, workload_from_render
from repro.scenes import generate_scene, trace_cameras
from repro.splat import render
from repro.train import TrainConfig


def main() -> None:
    scene = generate_scene("counter", n_points=900)
    train_cams, eval_cams = trace_cameras("counter", n_train=4, n_eval=1,
                                          width=96, height=64)
    targets = [render(scene, c).image for c in train_cams]
    dense = make_3dgs(scene)
    print(f"dense model: {dense.model.num_points} points")

    # The WS metric before optimization (Eqn 4): how much large, heavily
    # used splats dominate the model.
    usage = measure_usage(dense.model, train_cams)
    print(f"initial weighted scale: {weighted_scale(dense.model, usage, 4.0):.4f}")

    config = PruneTrainConfig(
        prune_fraction=0.15,
        max_iterations=4,
        max_retrain_rounds=1,
        relative_threshold=1.5,
        train=TrainConfig(iterations=6),
        scale_decay=ScaleDecayConfig(gamma=1e-2),
    )
    result = efficiency_aware_optimize(dense.model, train_cams, targets, config=config)

    print(f"\n{'round':>5} {'points':>8} {'intersections':>14} {'L_quality':>10}")
    for i, (pts, ints, q) in enumerate(
        zip(result.point_history, result.intersection_history, result.quality_history)
    ):
        print(f"{i:5d} {pts:8d} {ints:14.0f} {q:10.4f}")

    usage = measure_usage(result.model, train_cams)
    print(f"final weighted scale:  {weighted_scale(result.model, usage, 4.0):.4f}")

    # Speed and quality before/after.
    target = render(scene, eval_cams[0]).image
    for name, model in [("dense", dense.model), ("optimized", result.model)]:
        r = render(model, eval_cams[0])
        fps = DEFAULT_GPU.fps(workload_from_render(r))
        print(f"{name:<10} {fps:6.1f} FPS  PSNR {psnr(target, r.image):.1f} dB")


if __name__ == "__main__":
    main()
