"""Quickstart: render a scene, prune it with the CE metric, compare.

Runs in ~30 seconds on a laptop:

    python examples/quickstart.py

Demonstrates the library's core loop — ground-truth scene → dense "trained"
model → efficiency-aware pruning → speed/quality comparison on the mobile
GPU model.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import make_3dgs
from repro.core import compute_ce, prune_lowest_ce
from repro.hvs import psnr, ssim
from repro.perf import DEFAULT_GPU, workload_from_render
from repro.scenes import generate_scene, trace_cameras
from repro.splat import render


def main() -> None:
    # 1. A procedural stand-in for the Mip-NeRF 360 "garden" trace.
    scene = generate_scene("garden", n_points=1200)
    train_cams, eval_cams = trace_cameras("garden", n_train=4, n_eval=2,
                                          width=128, height=96)
    print(f"scene: {scene.num_points} ground-truth Gaussians")

    # 2. A dense "trained 3DGS checkpoint" derived from it (with the
    #    redundancy real training produces), plus ground-truth targets.
    dense = make_3dgs(scene)
    target = render(scene, eval_cams[0]).image
    dense_result = render(dense.model, eval_cams[0])
    dense_fps = DEFAULT_GPU.fps(workload_from_render(dense_result))
    print(f"dense 3DGS: {dense.model.num_points} points, "
          f"{dense_result.stats.total_intersections} tile intersections, "
          f"{dense_fps:.1f} FPS (mobile GPU model), "
          f"PSNR {psnr(target, dense_result.image):.1f} dB")

    # 3. Efficiency-aware pruning: score every point by Computational
    #    Efficiency (dominated pixels per tile intersection) and drop the
    #    worst 60%.
    ce = compute_ce(dense.model, train_cams)
    pruned = prune_lowest_ce(dense.model, ce.ce, fraction=0.6).model
    pruned_result = render(pruned, eval_cams[0])
    pruned_fps = DEFAULT_GPU.fps(workload_from_render(pruned_result))
    print(f"CE-pruned:  {pruned.num_points} points, "
          f"{pruned_result.stats.total_intersections} tile intersections, "
          f"{pruned_fps:.1f} FPS, "
          f"PSNR {psnr(target, pruned_result.image):.1f} dB, "
          f"SSIM {ssim(target, pruned_result.image):.3f}")

    speedup = pruned_fps / dense_fps
    print(f"→ {speedup:.1f}x faster after removing the least "
          f"compute-efficient points")

    # 4. For contrast: removing the same number of *random* points hurts
    #    quality much more at the same speed.
    rng = np.random.default_rng(0)
    random_kept = np.sort(
        rng.choice(dense.model.num_points, size=pruned.num_points, replace=False)
    )
    random_pruned = dense.model.subset(random_kept)
    random_img = render(random_pruned, eval_cams[0]).image
    print(f"random prune of equal size: PSNR {psnr(target, random_img):.1f} dB "
          f"(CE pruning wins)")


if __name__ == "__main__":
    main()
