"""Foveated VR rendering: a gaze sweep over a foveated MetaSapiens model.

    python examples/foveated_vr.py

Builds the hierarchical subset representation with selective
multi-versioning, trains the peripheral levels against the reference, then
renders the same viewpoint under several gaze positions — the workload
follows the gaze, exactly what an eye-tracked headset sees.
"""

from __future__ import annotations

from repro.baselines import make_mini_splatting_d
from repro.core import compute_ce, prune_lowest_ce
from repro.foveation import (
    FRTrainConfig,
    RegionLayout,
    build_foveated_model,
    region_pixel_fractions,
    render_foveated,
)
from repro.hvs import hvsq
from repro.perf import DEFAULT_GPU, workload_from_fr, workload_from_render
from repro.scenes import generate_scene, trace_cameras
from repro.splat import render


def main() -> None:
    # Scene, poses, and a CE-pruned L1 model (the foveal-quality model).
    scene = generate_scene("room", n_points=1000)
    train_cams, eval_cams = trace_cameras("room", n_train=4, n_eval=1,
                                          width=128, height=96)
    targets = [render(scene, c).image for c in train_cams]

    dense = make_mini_splatting_d(scene)
    ce = compute_ce(dense.model, train_cams)
    l1 = prune_lowest_ce(dense.model, ce.ce, 0.5).model
    print(f"L1 model: {l1.num_points} points "
          f"(pruned from {dense.model.num_points})")

    # Quality regions scaled to this camera's 70-degree FOV (the paper's
    # 0/18/27/33-degree boundaries assume a wider headset FOV).
    layout = RegionLayout(boundaries_deg=(0.0, 12.0, 20.0, 28.0), blend_band_deg=1.5)
    fractions = region_pixel_fractions(eval_cams[0], layout)
    print("region pixel fractions:",
          " / ".join(f"{f * 100:.0f}%" for f in fractions))

    # Build + train the hierarchy: L4 ⊂ L3 ⊂ L2 ⊂ L1, with per-level
    # opacity and SH-DC versions fine-tuned on their own regions.
    result = build_foveated_model(
        l1, train_cams, targets, layout,
        FRTrainConfig(level_fractions=(1.0, 0.5, 0.3, 0.15), finetune_iterations=8),
    )
    fmodel = result.model
    print(f"level point counts: {list(fmodel.level_counts())}")
    print(f"multi-versioning storage overhead: "
          f"{fmodel.storage_overhead_fraction() * 100:.1f}%")
    print("per-level HVSQ:", " ".join(f"{h:.2e}" for h in result.hvsq_per_level))

    # Reference (non-foveated) workload for comparison.
    cam = eval_cams[0]
    full = render(l1, cam)
    full_fps = DEFAULT_GPU.fps(workload_from_render(full))
    print(f"\nnon-foveated L1 render: {full_fps:.1f} FPS")

    # Sweep the gaze across the display.
    target = render(scene, cam).image
    for name, gaze in [
        ("center", None),
        ("left", (cam.width * 0.2, cam.height * 0.5)),
        ("top-right", (cam.width * 0.85, cam.height * 0.15)),
    ]:
        fr = render_foveated(fmodel, cam, gaze=gaze)
        fps = DEFAULT_GPU.fps(workload_from_fr(fr.stats))
        quality = hvsq(target, fr.image, cam, gaze=gaze).value
        print(f"gaze {name:<10} {fps:6.1f} FPS  "
              f"raster-ints {fr.stats.total_raster_intersections:6.0f}  "
              f"blend-px {fr.stats.blend_pixels:5d}  HVSQ {quality:.2e}")


if __name__ == "__main__":
    main()
