"""Accelerator design-space walk: Base vs +TM vs +TM+IP vs GSCore.

    python examples/accelerator_sim.py

Renders a foveated frame, feeds its per-tile workload into the cycle-level
pipeline simulator, and prints speedup / utilization / area / energy for
each design point — the Sec 5/7.3/7.5 story end to end.
"""

from __future__ import annotations

from repro.accel import (
    GSCORE,
    METASAPIENS_BASE,
    METASAPIENS_TM,
    METASAPIENS_TM_IP,
    accelerator_energy,
    area_mm2,
    energy_reduction,
    gpu_energy_mj,
    run_accelerator,
)
from repro.core import compute_ce, prune_lowest_ce
from repro.baselines import make_mini_splatting_d
from repro.foveation import RegionLayout, render_foveated, uniform_foveated_model
from repro.perf import workload_from_fr
from repro.scenes import generate_scene, trace_cameras
from repro.splat import render  # noqa: F401  (handy in interactive use)


def main() -> None:
    # A MetaSapiens-H-style foveated workload on the flowers trace.
    scene = generate_scene("flowers", n_points=1200)
    train_cams, eval_cams = trace_cameras("flowers", n_train=4, n_eval=1,
                                          width=128, height=96)
    dense = make_mini_splatting_d(scene)
    ce = compute_ce(dense.model, train_cams)
    l1 = prune_lowest_ce(dense.model, ce.ce, 0.6).model

    layout = RegionLayout(boundaries_deg=(0.0, 12.0, 20.0, 28.0))
    import numpy as np

    order = np.argsort(-ce.ce[prune_lowest_ce(dense.model, ce.ce, 0.6).kept_indices])
    fmodel = uniform_foveated_model(l1, layout, (1.0, 0.45, 0.22, 0.1), order=order)

    frame = render_foveated(fmodel, eval_cams[0])
    workload = workload_from_fr(frame.stats)
    ints = frame.stats.raster_intersections_per_tile
    print(f"frame workload: {frame.stats.total_raster_intersections:.0f} "
          f"tile intersections over {ints.size} tiles "
          f"(max/mean = {ints.max() / max(ints.mean(), 1e-9):.1f} — the imbalance "
          f"the hardware has to fight)")

    print(f"\n{'design':<20} {'speedup':>8} {'util':>6} {'area mm2':>9} "
          f"{'energy mJ':>10} {'energy vs GPU':>13}")
    for config in (METASAPIENS_BASE, METASAPIENS_TM, METASAPIENS_TM_IP, GSCORE):
        run = run_accelerator(ints, workload, config)
        energy = accelerator_energy(workload, config)
        print(f"{config.name:<20} {run.speedup:7.1f}x {run.utilization:6.2f} "
              f"{area_mm2(config):9.2f} {energy.total_mj:10.2f} "
              f"{energy_reduction(workload, config):12.1f}x")
    print(f"\nmobile GPU reference energy: {gpu_energy_mj(workload):.1f} mJ/frame")

    # Area scaling (Fig 15 in miniature).
    print(f"\n{'scaled design':<26} {'area mm2':>9} {'speedup':>8}")
    for scale in (1.0, 2.0, 4.0):
        for base in (METASAPIENS_TM_IP, GSCORE):
            config = base.scaled(scale)
            run = run_accelerator(ints, workload, config)
            print(f"{config.name:<26} {area_mm2(config):9.2f} {run.speedup:7.1f}x")


if __name__ == "__main__":
    main()
