"""Dynamic foveation under a realistic scanpath + model compression.

    python examples/gaze_dynamics.py

Simulates fixation/saccade gaze over a short VR clip, renders each frame
foveated at the current gaze, and reports how the workload (and therefore
frame time) moves with the eye — then squeezes the model further with SH
vector quantization.
"""

from __future__ import annotations

import numpy as np

from repro.compress import compress_model
from repro.core import compute_ce, prune_lowest_ce
from repro.baselines import make_mini_splatting_d
from repro.foveation import RegionLayout, render_foveated_batch, uniform_foveated_model
from repro.perf import DEFAULT_GPU, workload_from_fr
from repro.scenes import gaze_trajectory, generate_scene, saccade_frames, trace_cameras
from repro.splat import render


def main() -> None:
    scene = generate_scene("truck", n_points=1000, sh_degree=2)
    train_cams, eval_cams = trace_cameras("truck", n_train=4, n_eval=1,
                                          width=128, height=96)
    cam = eval_cams[0]

    dense = make_mini_splatting_d(scene)
    ce = compute_ce(dense.model, train_cams)
    keep = prune_lowest_ce(dense.model, ce.ce, 0.55)
    l1 = keep.model
    order = np.argsort(-ce.ce[keep.kept_indices])

    layout = RegionLayout(boundaries_deg=(0.0, 12.0, 20.0, 28.0))
    fmodel = uniform_foveated_model(l1, layout, (1.0, 0.45, 0.22, 0.1), order=order)

    # A 0.5-second scanpath at 90 FPS.
    n_frames = 45
    gaze = gaze_trajectory(cam.width, cam.height, n_frames, fps=90.0, seed=1)
    saccades = saccade_frames(gaze)
    print(f"scanpath: {n_frames} frames, {saccades.sum()} saccade frames")

    # All sampled frames render through one batched foveated pass: the
    # pose's projection prefix runs once for the whole scanpath.
    frames = list(range(0, n_frames, 5))
    results = render_foveated_batch(
        fmodel, cam, gazes=[tuple(gaze[f]) for f in frames]
    )
    fps_values = []
    for f, result in zip(frames, results):
        fps = DEFAULT_GPU.fps(workload_from_fr(result.stats))
        fps_values.append(fps)
        marker = "saccade" if saccades[f] else "fixation"
        print(f"frame {f:3d} gaze ({gaze[f, 0]:5.1f},{gaze[f, 1]:5.1f}) "
              f"[{marker:<8}] {fps:6.1f} FPS  "
              f"ints {result.stats.total_raster_intersections:5.0f}")
    print(f"FPS over the clip: min {min(fps_values):.1f} / "
          f"mean {np.mean(fps_values):.1f} / max {max(fps_values):.1f}")

    # Storage: pruning already shrank the model; VQ shrinks it further.
    compressed = compress_model(l1, num_codes=128)
    print(f"\nstorage: dense {dense.model.storage_bytes() / 1024:.0f} KB → "
          f"pruned {l1.storage_bytes() / 1024:.0f} KB → "
          f"pruned+VQ {compressed.storage_bytes() / 1024:.0f} KB "
          f"({dense.model.storage_bytes() / compressed.storage_bytes():.1f}x total)")

    # Verify the VQ model still renders faithfully.
    from repro.hvs import psnr

    target = render(l1, cam).image
    vq_img = render(compressed.decompress(), cam).image
    print(f"VQ reconstruction PSNR vs pruned model: {psnr(target, vq_img):.1f} dB")


if __name__ == "__main__":
    main()
